"""The statcheck engine: walk files, parse, run rules, apply suppressions.

The engine is deliberately small: rules do the domain work, the engine
owns everything generic -- file discovery, AST parsing with a shared
parent map, module-name derivation from the ``src`` layout, suppression
filtering and stable ordering of the output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.statcheck.finding import Finding
from repro.statcheck.suppress import Suppressions, parse_suppressions

if TYPE_CHECKING:  # pragma: no cover
    from repro.statcheck.rules.base import Rule

__all__ = ["ModuleContext", "check_paths", "check_project", "iter_python_files"]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module."""

    path: Path  # absolute or as-given path on disk
    relpath: str  # repo-relative POSIX path used in findings
    module: str  # dotted module name ("repro.sem.mesh"); best effort
    source: str
    lines: list[str]
    tree: ast.AST
    suppressions: Suppressions
    parents: dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def from_path(cls, path: Path, root: Path | None = None) -> "ModuleContext":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        parents: dict[int, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        try:
            rel = path.resolve().relative_to((root or Path.cwd()).resolve())
        except ValueError:
            rel = path
        suppressions = parse_suppressions(source.splitlines())
        # A suppression written on (or immediately above) a decorator line
        # must cover the decorated statement: findings on a decorated
        # ``def`` are reported at the ``def`` line, not the ``@`` line.
        for node in ast.walk(tree):
            decorators = getattr(node, "decorator_list", None)
            if decorators:
                for line in range(decorators[0].lineno, node.lineno):
                    suppressions.forward(line, node.lineno)
        return cls(
            path=path,
            relpath=rel.as_posix(),
            module=_module_name(path),
            source=source,
            lines=source.splitlines(),
            tree=tree,
            suppressions=suppressions,
            parents=parents,
        )

    # -- helpers shared by rules --------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(id(cur))

    def in_package(self, *packages: str) -> bool:
        """True when the module lives under any ``repro.<package>``."""
        parts = self.module.split(".")
        return len(parts) >= 2 and parts[0] == "repro" and parts[1] in packages

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, severity=None
    ) -> Finding:
        """Build a finding anchored at ``node`` (severity defaults to the rule's)."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.name,
            path=self.relpath,
            line=lineno,
            col=col,
            message=message,
            severity=severity if severity is not None else rule.severity,
            source_line=self.source_line(lineno),
        )


def _module_name(path: Path) -> str:
    """Dotted module name, assuming the conventional ``src/<pkg>/...`` layout."""
    parts = list(path.resolve().parts)
    name = path.stem
    for anchor in ("src",):
        if anchor in parts:
            sub = parts[parts.index(anchor) + 1 :]
            if sub:
                mod = [*sub[:-1], name] if name != "__init__" else sub[:-1]
                return ".".join(mod)
    # Fallback: best effort from the trailing path components.
    return name


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files are passed through)."""
    for p in paths:
        p = Path(p)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub


def check_paths(
    paths: Iterable[Path],
    rules: Iterable["Rule"],
    root: Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """Run per-module ``rules`` over every Python file under ``paths``.

    Returns ``(findings, errors)``: findings sorted by location, and a list
    of human-readable messages for files that failed to parse (a syntax
    error in checked code is reported, not raised -- the linter must not
    die on the code it lints).
    """
    return check_project(paths, rules, analyzers=(), root=root)


def check_project(
    paths: Iterable[Path],
    rules: Iterable["Rule"] = (),
    analyzers: Iterable = (),
    root: Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """Run per-module rules and project-wide analyzers over ``paths``.

    The project (all parsed modules + call graph) is loaded once and
    shared by every analyzer.  Analyzer findings pass through the same
    per-module suppression tables as rule findings, so one suppression
    grammar covers both layers.
    """
    from repro.statcheck.callgraph import Project

    rules = list(rules)
    analyzers = list(analyzers)
    project = Project.load(list(paths), root=root)
    findings: list[Finding] = []
    for ctx in project.modules:
        for rule in rules:
            if not rule.applies(ctx):
                continue
            for f in rule.check(ctx):
                if not ctx.suppressions.is_suppressed(f.line, f.rule):
                    findings.append(f)
    for analyzer in analyzers:
        for f in analyzer.check(project):
            ctx = project.module_by_relpath(f.path)
            if ctx is None or not ctx.suppressions.is_suppressed(f.line, f.rule):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, list(project.errors)
