"""repro: a spectral-element Rayleigh-Benard convection framework.

A from-scratch Python reproduction of the system described in
"Exploring the Ultimate Regime of Turbulent Rayleigh-Benard Convection
Through Unprecedented Spectral-Element Simulations" (SC '23):

* ``repro.sem`` -- the spectral-element discretization (GLL bases, hex
  meshes including the butterfly cylinder, gather--scatter, matrix-free
  tensor-product operators, 3/2-rule dealiasing).
* ``repro.solvers`` / ``repro.precond`` -- Krylov solvers and the hybrid
  Schwarz-multigrid pressure preconditioner with its task-overlap schedule.
* ``repro.timeint`` / ``repro.core`` -- BDF/EXT time integration, the
  P_N-P_N splitting scheme, the Boussinesq scalar, case configuration and
  the simulation driver with Nusselt-number statistics.
* ``repro.backend`` -- the device-abstraction layer (CPU backend plus an
  instrumented backend feeding the GPU simulator).
* ``repro.gpu`` -- a discrete-event GPU execution simulator (streams,
  launch latency, priorities) reproducing the Fig. 2 overlap study.
* ``repro.comm`` -- an in-process MPI-rank simulator with two-phase
  distributed gather--scatter.
* ``repro.perfmodel`` -- roofline + network performance model of LUMI and
  Leonardo reproducing the Fig. 3 / Fig. 4 scaling results.
* ``repro.compression`` / ``repro.insitu`` -- the lossy spectral
  compressor (Fig. 5) and the asynchronous in-situ pipeline with
  streaming POD.
* ``repro.analysis`` -- Nu-Ra scaling fits, the ultimate-regime crossover
  analysis, energy spectra and boundary-layer diagnostics.
"""

__version__ = "1.0.0"

__all__ = [
    "sem",
    "solvers",
    "precond",
    "timeint",
    "core",
    "backend",
    "gpu",
    "comm",
    "perfmodel",
    "compression",
    "insitu",
    "analysis",
]
