"""Restarted GMRES with right preconditioning.

The paper's pressure solve: "the pressure is solved through a hybrid-Schwarz
multigrid preconditioner combined with GMRES".  Right preconditioning keeps
the GMRES residual equal to the true residual of ``A x = b``, so the
stopping criterion does not depend on the quality of the preconditioner.
An optional null-space projector keeps the iteration orthogonal to the
constant mode of the pure-Neumann pressure problem.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import numpy.typing as npt

from repro.observability.tracer import NULL_TRACER, TracerProtocol
from repro.solvers.monitor import SolverMonitor

__all__ = ["Gmres"]

FloatArray = npt.NDArray[np.float64]
Operator = Callable[[FloatArray], FloatArray]
Dot = Callable[[FloatArray, FloatArray], float]


def _copy(r: FloatArray) -> FloatArray:
    """Unpreconditioned default: ``M^{-1} = I`` (fresh copy, callers mutate)."""
    return r.copy()


def _no_projection(u: FloatArray) -> FloatArray:
    """Default null-space projector: the problem is nonsingular."""
    return u


class Gmres:
    """GMRES(m) for general nonsingular (or consistently singular) systems.

    Parameters
    ----------
    amul, dot, precond:
        Operator action, inner product and right preconditioner ``M^{-1}``.
    restart:
        Krylov subspace dimension per cycle (Neko's default is 30; the
        pressure solve typically converges well within one cycle).
    project_out:
        Optional in-place null-space projector applied to the right-hand
        side, to every preconditioned direction and to the solution --
        removes the constant pressure mode.
    dot_weight:
        Optional pointwise weight ``W`` such that
        ``dot(u, v) == sum(u * W * v)`` (the gather--scatter counting
        weight).  When given, the Arnoldi basis is kept in a dense
        ``(m+1, n)`` matrix (plus a ``W``-scaled copy) and each
        orthogonalization runs as *reorthogonalized classical
        Gram--Schmidt* (CGS2): two gemv projections instead of ``k + 1``
        Python-level triple-product dots and axpys.  CGS2 is as robust as
        modified Gram--Schmidt in practice (the standard choice in
        performance-oriented Krylov implementations) and must be
        consistent with ``dot``; residual histories agree to rounding.
    """

    def __init__(
        self,
        amul: Operator,
        dot: Dot,
        precond: Operator | None = None,
        tol: float = 1e-7,
        maxiter: int = 300,
        restart: int = 30,
        project_out: Callable[[FloatArray], FloatArray] | None = None,
        atol: float = 1e-30,
        name: str = "gmres",
        tracer: TracerProtocol | None = None,
        dot_weight: FloatArray | None = None,
    ) -> None:
        self.amul = amul
        self.dot = dot
        self.dot_weight = dot_weight
        self.precond: Operator = precond if precond is not None else _copy
        self.tol = tol
        self.atol = atol
        self.maxiter = maxiter
        self.restart = restart
        self.project_out: Callable[[FloatArray], FloatArray] = (
            project_out if project_out is not None else _no_projection
        )
        self.name = name
        self.tracer: TracerProtocol = tracer if tracer is not None else NULL_TRACER

    def _norm(self, u: FloatArray) -> float:
        if self.dot_weight is not None:
            d = float(np.dot((u * self.dot_weight).reshape(-1), u.reshape(-1)))
            return float(np.sqrt(max(d, 0.0)))
        return float(np.sqrt(max(self.dot(u, u), 0.0)))

    def solve(
        self, b: FloatArray, x0: FloatArray | None = None
    ) -> tuple[FloatArray, SolverMonitor]:
        """Solve ``A x = b``; returns the solution and a convergence monitor."""
        if not self.tracer.enabled:
            return self._solve(b, x0)
        with self.tracer.span(f"krylov.{self.name}") as sp:
            x, mon = self._solve(b, x0)
            sp.add("iterations", mon.iterations)
            sp.tags["converged"] = mon.converged
            sp.tags["final_residual"] = mon.final_residual
            return x, mon

    def _solve(
        self, b: FloatArray, x0: FloatArray | None = None
    ) -> tuple[FloatArray, SolverMonitor]:
        mon = SolverMonitor(tol=self.tol, atol=self.atol, name=self.name)
        b = self.project_out(b.copy())
        x = np.zeros_like(b) if x0 is None else x0.copy()

        r = b - self.amul(x) if x0 is not None else b.copy()
        self.project_out(r)
        beta = self._norm(r)
        if mon.start(beta):
            return x, mon
        target = max(self.tol * beta, mon.atol)

        weight = self.dot_weight
        wf = weight.reshape(-1) if weight is not None else None
        shape = b.shape
        total_iters = 0
        # Workspace for the weighted fast path, hoisted out of the restart
        # loop: one (restart+1, n) basis matrix and one weighting vector,
        # reused across restart cycles (only the first m+1 rows of a cycle
        # are touched).
        vmat_ws: FloatArray | None = None
        ww: FloatArray | None = None
        if weight is not None and wf is not None:
            vmat_ws = np.empty((self.restart + 1, b.size))
            ww = np.empty(b.size)
        while total_iters < self.maxiter:
            m = min(self.restart, self.maxiter - total_iters)
            # Arnoldi basis and Hessenberg matrix.  The weighted fast path
            # keeps the basis as rows of a dense (m+1, n) matrix ``vmat``
            # so each orthogonalization is a pair of gemvs on the *same*
            # matrix (the W-weighting is folded into the right-hand vector:
            # V^T W w = V^T (W.w), so no scaled basis copy is kept -- that
            # would double the memory traffic of every gemv); the generic
            # path keeps element-layout vectors.
            v: list[FloatArray] = []
            vmat: FloatArray | None = None
            if vmat_ws is not None:
                vmat = vmat_ws[: m + 1]
                np.divide(r.reshape(-1), beta, out=vmat[0])
            else:
                v = [r / beta]
            # Hessenberg columns, Givens coefficients and the reduced RHS
            # live as Python floats: the recurrences are sequential scalar
            # arithmetic, where single-element ndarray indexing costs ~50x
            # a float op and dominated the per-iteration overhead.
            hcols: list[list[float]] = []
            g: list[float] = [beta] + [0.0] * m
            cs: list[float] = [0.0] * m
            sn: list[float] = [0.0] * m
            z_dirs: list[FloatArray] = []
            k_done = 0

            for k in range(m):
                vk = vmat[k].reshape(shape) if vmat is not None else v[k]
                z = self.precond(vk)
                self.project_out(z)
                z_dirs.append(z)
                w = self.amul(z)
                self.project_out(w)
                if vmat is not None and ww is not None:
                    # Classical Gram-Schmidt with DGKS selective
                    # reorthogonalization: one gemv pair per iteration, and a
                    # second pass only when the projection removed most of the
                    # vector (h_next^2 < ||w_before||^2 / 2), the standard
                    # "twice is enough" criterion.  The test reuses already
                    # computed quantities: ||w_before||^2 = h_next^2 + |hcol|^2.
                    wflat = np.ascontiguousarray(w.reshape(-1))
                    np.multiply(wflat, wf, out=ww)
                    hcol = vmat[: k + 1] @ ww
                    wflat -= hcol @ vmat[: k + 1]
                    hc = hcol.tolist()
                    np.multiply(wflat, wf, out=ww)
                    h2 = float(max(np.dot(ww, wflat), 0.0))
                    if 2.0 * h2 < h2 + float(np.dot(hcol, hcol)):
                        corr = vmat[: k + 1] @ ww
                        wflat -= corr @ vmat[: k + 1]
                        for i, ci in enumerate(corr.tolist()):
                            hc[i] += ci
                        np.multiply(wflat, wf, out=ww)
                        h2 = float(max(np.dot(ww, wflat), 0.0))
                    h_next = float(np.sqrt(h2))
                    w = wflat.reshape(shape)
                else:
                    # Modified Gram-Schmidt.
                    hc = []
                    for i in range(k + 1):
                        hik = float(self.dot(w, v[i]))
                        hc.append(hik)
                        w -= hik * v[i]
                    h_next = self._norm(w)
                hc.append(h_next)

                # Apply accumulated Givens rotations to the new column.
                for i in range(k):
                    tmp = cs[i] * hc[i] + sn[i] * hc[i + 1]
                    hc[i + 1] = -sn[i] * hc[i] + cs[i] * hc[i + 1]
                    hc[i] = tmp
                denom = float(np.hypot(hc[k], hc[k + 1]))
                if denom == 0.0:
                    hcols.append(hc)
                    k_done = k + 1
                    break
                cs[k] = hc[k] / denom
                sn[k] = hc[k + 1] / denom
                hc[k] = denom
                hc[k + 1] = 0.0
                hcols.append(hc)
                g[k + 1] = -sn[k] * g[k]
                g[k] = cs[k] * g[k]

                k_done = k + 1
                total_iters += 1
                res = abs(g[k + 1])
                mon.step(res)
                if res <= target or h_next == 0.0:
                    break
                if k + 1 < m:
                    if vmat is not None:
                        np.divide(w.reshape(-1), h_next, out=vmat[k + 1])
                    else:
                        v.append(w / h_next)

            # Back substitution for the small triangular system (a zero
            # pivot signals exact breakdown; drop that direction).
            y = [0.0] * k_done
            for i in range(k_done - 1, -1, -1):
                if hcols[i][i] == 0.0:
                    continue
                s = g[i]
                for j in range(i + 1, k_done):
                    s -= hcols[j][i] * y[j]
                y[i] = s / hcols[i][i]
            for i in range(k_done):
                x += y[i] * z_dirs[i]
            self.project_out(x)

            r = b - self.amul(x)
            self.project_out(r)
            beta = self._norm(r)
            # True-residual check (guards against Arnoldi loss of orthogonality).
            mon.residuals[-1] = beta
            mon.converged = beta <= target
            if mon.converged or k_done == 0:
                break
        return x, mon
