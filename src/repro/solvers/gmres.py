"""Restarted GMRES with right preconditioning.

The paper's pressure solve: "the pressure is solved through a hybrid-Schwarz
multigrid preconditioner combined with GMRES".  Right preconditioning keeps
the GMRES residual equal to the true residual of ``A x = b``, so the
stopping criterion does not depend on the quality of the preconditioner.
An optional null-space projector keeps the iteration orthogonal to the
constant mode of the pure-Neumann pressure problem.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import numpy.typing as npt

from repro.observability.tracer import NULL_TRACER, TracerProtocol
from repro.solvers.monitor import SolverMonitor

__all__ = ["Gmres"]

FloatArray = npt.NDArray[np.float64]
Operator = Callable[[FloatArray], FloatArray]
Dot = Callable[[FloatArray, FloatArray], float]


def _copy(r: FloatArray) -> FloatArray:
    """Unpreconditioned default: ``M^{-1} = I`` (fresh copy, callers mutate)."""
    return r.copy()


def _no_projection(u: FloatArray) -> FloatArray:
    """Default null-space projector: the problem is nonsingular."""
    return u


class Gmres:
    """GMRES(m) for general nonsingular (or consistently singular) systems.

    Parameters
    ----------
    amul, dot, precond:
        Operator action, inner product and right preconditioner ``M^{-1}``.
    restart:
        Krylov subspace dimension per cycle (Neko's default is 30; the
        pressure solve typically converges well within one cycle).
    project_out:
        Optional in-place null-space projector applied to the right-hand
        side, to every preconditioned direction and to the solution --
        removes the constant pressure mode.
    """

    def __init__(
        self,
        amul: Operator,
        dot: Dot,
        precond: Operator | None = None,
        tol: float = 1e-7,
        maxiter: int = 300,
        restart: int = 30,
        project_out: Callable[[FloatArray], FloatArray] | None = None,
        atol: float = 1e-30,
        name: str = "gmres",
        tracer: TracerProtocol | None = None,
    ) -> None:
        self.amul = amul
        self.dot = dot
        self.precond: Operator = precond if precond is not None else _copy
        self.tol = tol
        self.atol = atol
        self.maxiter = maxiter
        self.restart = restart
        self.project_out: Callable[[FloatArray], FloatArray] = (
            project_out if project_out is not None else _no_projection
        )
        self.name = name
        self.tracer: TracerProtocol = tracer if tracer is not None else NULL_TRACER

    def _norm(self, u: FloatArray) -> float:
        return float(np.sqrt(max(self.dot(u, u), 0.0)))

    def solve(
        self, b: FloatArray, x0: FloatArray | None = None
    ) -> tuple[FloatArray, SolverMonitor]:
        """Solve ``A x = b``; returns the solution and a convergence monitor."""
        if not self.tracer.enabled:
            return self._solve(b, x0)
        with self.tracer.span(f"krylov.{self.name}") as sp:
            x, mon = self._solve(b, x0)
            sp.add("iterations", mon.iterations)
            sp.tags["converged"] = mon.converged
            sp.tags["final_residual"] = mon.final_residual
            return x, mon

    def _solve(
        self, b: FloatArray, x0: FloatArray | None = None
    ) -> tuple[FloatArray, SolverMonitor]:
        mon = SolverMonitor(tol=self.tol, atol=self.atol, name=self.name)
        b = self.project_out(b.copy())
        x = np.zeros_like(b) if x0 is None else x0.copy()

        r = b - self.amul(x) if x0 is not None else b.copy()
        self.project_out(r)
        beta = self._norm(r)
        if mon.start(beta):
            return x, mon
        target = max(self.tol * beta, mon.atol)

        total_iters = 0
        while total_iters < self.maxiter:
            m = min(self.restart, self.maxiter - total_iters)
            # Arnoldi basis (element-layout vectors) and Hessenberg matrix.
            v = [r / beta]
            h = np.zeros((m + 1, m))
            g = np.zeros(m + 1)
            g[0] = beta
            cs = np.zeros(m)
            sn = np.zeros(m)
            z_dirs: list[FloatArray] = []
            k_done = 0

            for k in range(m):
                z = self.precond(v[k])
                self.project_out(z)
                z_dirs.append(z)
                w = self.amul(z)
                self.project_out(w)
                # Modified Gram-Schmidt.
                for i in range(k + 1):
                    h[i, k] = self.dot(w, v[i])
                    w -= h[i, k] * v[i]
                h_next = self._norm(w)
                h[k + 1, k] = h_next

                # Apply accumulated Givens rotations to the new column.
                for i in range(k):
                    tmp = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                    h[i + 1, k] = -sn[i] * h[i, k] + cs[i] * h[i + 1, k]
                    h[i, k] = tmp
                denom = np.hypot(h[k, k], h[k + 1, k])
                if denom == 0.0:
                    k_done = k + 1
                    break
                cs[k] = h[k, k] / denom
                sn[k] = h[k + 1, k] / denom
                h[k, k] = denom
                h[k + 1, k] = 0.0
                g[k + 1] = -sn[k] * g[k]
                g[k] = cs[k] * g[k]

                k_done = k + 1
                total_iters += 1
                res = abs(g[k + 1])
                mon.step(res)
                if res <= target or h_next == 0.0:
                    break
                if k + 1 < m:
                    v.append(w / h_next)

            # Back substitution for the small triangular system (a zero
            # pivot signals exact breakdown; drop that direction).
            y = np.zeros(k_done)
            for i in range(k_done - 1, -1, -1):
                if h[i, i] == 0.0:
                    y[i] = 0.0
                    continue
                y[i] = (g[i] - h[i, i + 1 : k_done] @ y[i + 1 : k_done]) / h[i, i]
            for i in range(k_done):
                x += y[i] * z_dirs[i]
            self.project_out(x)

            r = b - self.amul(x)
            self.project_out(r)
            beta = self._norm(r)
            # True-residual check (guards against Arnoldi loss of orthogonality).
            mon.residuals[-1] = beta
            mon.converged = beta <= target
            if mon.converged or k_done == 0:
                break
        return x, mon
