"""Null-space projection for the singular pressure-Poisson problem.

With pure Neumann boundary conditions the stiffness matrix has the constant
vector in its kernel; the compatible right-hand side is orthogonal to it and
the solution is defined up to a constant.  The projector removes the
(mass-weighted or counting-weighted) mean so the Krylov iteration stays in
the orthogonal complement -- the standard treatment in Neko/Nek5000.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

import numpy as np
import numpy.typing as npt

__all__ = ["MeanProjector"]

FloatArray = npt.NDArray[np.float64]


class _HasMultiplicity(Protocol):
    """The slice of the gather-scatter interface :meth:`MeanProjector.counting` needs."""

    multiplicity: FloatArray


class MeanProjector:
    """Projects the weighted mean out of a field (in place).

    Parameters
    ----------
    weight:
        Pointwise weight defining the inner product against the constant
        vector.  For SEM use the *unassembled* mass matrix so the mean is the
        true volume average; for pure algebraic problems use multiplicity
        weights.
    """

    def __init__(self, weight: FloatArray) -> None:
        self.weight = weight
        self._weight_flat = np.ascontiguousarray(weight).reshape(-1)
        self.total = float(np.sum(weight))
        if self.total <= 0:
            raise ValueError("projection weight must have positive total")

    def mean(self, u: FloatArray) -> float:
        """Weighted mean of ``u`` (one BLAS dot; called per Krylov direction)."""
        return float(np.dot(self._weight_flat, u.reshape(-1))) / self.total

    def __call__(self, u: FloatArray) -> FloatArray:
        """Remove the weighted mean from ``u`` in place; returns ``u``."""
        u -= self.mean(u)
        return u

    @classmethod
    def identity(cls) -> Callable[[FloatArray], FloatArray]:
        """A no-op projector for non-singular problems."""
        return lambda u: u

    @classmethod
    def counting(cls, gs: _HasMultiplicity) -> "MeanProjector":
        """Projector against the constant over *unique* dofs.

        This is the correct compatibility projection for assembled
        (duplicated-consistent) residuals of the pure-Neumann problem: the
        kernel of the stiffness matrix is the constant vector over unique
        dofs, so the component to remove is ``sum_unique r / n_unique``,
        computed here with inverse-multiplicity weights.
        """
        return cls(1.0 / gs.multiplicity)
