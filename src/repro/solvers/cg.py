"""Preconditioned conjugate-gradient solver.

Matches the paper's velocity/temperature configuration: CG with a (block-)
Jacobi preconditioner.  The operator, preconditioner and inner product are
injected as callables, mirroring Neko's abstract ``ax``/``pc``/``glsc3``
interfaces, so the same solver runs on the plain CPU arrays, the
instrumented backend and the distributed rank simulator.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import numpy.typing as npt

from repro.observability.tracer import NULL_TRACER, TracerProtocol
from repro.solvers.monitor import SolverMonitor

__all__ = ["ConjugateGradient"]

FloatArray = npt.NDArray[np.float64]
Operator = Callable[[FloatArray], FloatArray]
Dot = Callable[[FloatArray, FloatArray], float]


def _identity(r: FloatArray) -> FloatArray:
    """Unpreconditioned default: ``M^{-1} = I``."""
    return r


class ConjugateGradient:
    """CG for symmetric positive-definite systems ``A x = b``.

    Parameters
    ----------
    amul:
        The (assembled, masked) operator action.
    dot:
        Inner product consistent with the storage layout.
    precond:
        Optional preconditioner action ``z = M^{-1} r``; must be SPD.
    tol, maxiter:
        Relative residual tolerance and iteration cap.
    fixed_iterations:
        When set, run exactly this many iterations with *no* convergence
        test -- the mode the paper uses for the coarse-grid solve ("a fixed
        number of iterations (~10)"), which avoids the extra allreduce of a
        residual norm per iteration.
    """

    def __init__(
        self,
        amul: Operator,
        dot: Dot,
        precond: Operator | None = None,
        tol: float = 1e-8,
        maxiter: int = 500,
        fixed_iterations: int | None = None,
        atol: float = 1e-30,
        name: str = "cg",
        tracer: TracerProtocol | None = None,
    ) -> None:
        self.amul = amul
        self.dot = dot
        self.precond: Operator = precond if precond is not None else _identity
        self.tol = tol
        self.atol = atol
        self.maxiter = maxiter
        self.fixed_iterations = fixed_iterations
        self.name = name
        self.tracer: TracerProtocol = tracer if tracer is not None else NULL_TRACER

    def solve(
        self, b: FloatArray, x0: FloatArray | None = None
    ) -> tuple[FloatArray, SolverMonitor]:
        """Solve ``A x = b``; returns the solution and a convergence monitor."""
        if not self.tracer.enabled:
            return self._solve(b, x0)
        with self.tracer.span(f"krylov.{self.name}") as sp:
            x, mon = self._solve(b, x0)
            sp.add("iterations", mon.iterations)
            sp.tags["converged"] = mon.converged
            sp.tags["final_residual"] = mon.final_residual
            return x, mon

    def _solve(
        self, b: FloatArray, x0: FloatArray | None = None
    ) -> tuple[FloatArray, SolverMonitor]:
        mon = SolverMonitor(tol=self.tol, atol=self.atol, name=self.name)
        x = np.zeros_like(b) if x0 is None else x0.copy()

        r = b - self.amul(x) if x0 is not None else b.copy()
        z = self.precond(r)
        rho = self.dot(r, z)
        rnorm = float(np.sqrt(max(self.dot(r, r), 0.0)))

        if self.fixed_iterations is None and mon.start(rnorm):
            return x, mon
        if self.fixed_iterations is not None:
            mon.start(rnorm)

        p = z.copy()
        niter = self.fixed_iterations if self.fixed_iterations is not None else self.maxiter
        for _ in range(niter):
            ap = self.amul(p)
            pap = self.dot(p, ap)
            if pap <= 0.0:
                # Operator lost positive-definiteness (breakdown); bail with
                # the best iterate so far rather than diverging silently.
                break
            alpha = rho / pap
            x += alpha * p
            r -= alpha * ap
            if self.fixed_iterations is None:
                rnorm = float(np.sqrt(max(self.dot(r, r), 0.0)))
                if mon.step(rnorm):
                    break
            z = self.precond(r)
            rho_new = self.dot(r, z)
            beta = rho_new / rho
            rho = rho_new
            # In-place recurrence update: beta*p + z is bitwise identical
            # to z + beta*p and reuses p's buffer instead of allocating.
            p *= beta
            p += z
        if self.fixed_iterations is not None:
            rnorm = float(np.sqrt(max(self.dot(r, r), 0.0)))
            mon.step(rnorm)
        return x, mon
