"""Krylov solvers used by the time-stepper.

The paper's configuration: conjugate gradients with block-Jacobi
preconditioning for the velocity and temperature Helmholtz solves, and
GMRES with the hybrid Schwarz-multigrid preconditioner for the pressure
Poisson equation.  Both are implemented matrix-free against a user-supplied
operator callable and a user-supplied inner product (so that duplicated SEM
storage and, in the distributed case, allreduce-based dots plug in
unchanged).
"""

from repro.solvers.monitor import SolverMonitor
from repro.solvers.cg import ConjugateGradient
from repro.solvers.pipecg import PipelinedConjugateGradient
from repro.solvers.gmres import Gmres
from repro.solvers.projection import MeanProjector
from repro.solvers.solution_projection import SolutionProjection

__all__ = [
    "SolverMonitor",
    "ConjugateGradient",
    "PipelinedConjugateGradient",
    "Gmres",
    "MeanProjector",
    "SolutionProjection",
]
