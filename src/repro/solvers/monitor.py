"""Convergence monitoring shared by all Krylov solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SolverMonitor", "IterationStreakTracker"]


@dataclass
class SolverMonitor:
    """Record of one linear solve: residual history and outcome.

    ``residuals[0]`` is the initial residual norm; one entry is appended per
    iteration.  ``converged`` reflects the *relative* criterion
    ``||r|| <= tol * ||r_0||`` unless the initial residual was already below
    the absolute floor ``atol``.
    """

    tol: float
    atol: float = 1e-30
    residuals: list[float] = field(default_factory=list)
    converged: bool = False
    name: str = ""

    @property
    def iterations(self) -> int:
        """Number of iterations performed (excludes the initial residual)."""
        return max(0, len(self.residuals) - 1)

    @property
    def initial_residual(self) -> float:
        return self.residuals[0] if self.residuals else float("nan")

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")

    def start(self, r0: float) -> bool:
        """Record the initial residual; returns True if already converged."""
        self.residuals = [r0]
        self.converged = r0 <= self.atol
        return self.converged

    def step(self, r: float) -> bool:
        """Record an iteration residual; returns True on convergence."""
        self.residuals.append(r)
        target = max(self.tol * self.residuals[0], self.atol)
        self.converged = r <= target
        return self.converged

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else "NOT converged"
        return (
            f"{self.name or 'solve'}: {status} in {self.iterations} iters, "
            f"||r|| {self.initial_residual:.3e} -> {self.final_residual:.3e}"
        )

    def as_record(self) -> dict[str, object]:
        """Flat JSON-ready digest (flight recorder, telemetry export)."""
        return {
            "name": self.name,
            "iterations": self.iterations,
            "converged": self.converged,
            "initial_residual": self.initial_residual,
            "final_residual": self.final_residual,
            "tol": self.tol,
        }


@dataclass
class IterationStreakTracker:
    """Detects sustained solver distress across consecutive solves.

    One bad solve is noise; ``streak`` consecutive solves that either hit
    the iteration ceiling ``limit`` or fail to converge signal a run
    heading for divergence -- the pattern production monitoring watches in
    the pressure solve.  Feed it :class:`SolverMonitor` instances (or raw
    iteration counts) with :meth:`observe`; it returns ``True`` once the
    streak is reached.
    """

    limit: int
    streak: int = 3
    count: int = 0

    def observe(self, solve: "SolverMonitor | int", converged: bool = True) -> bool:
        """Record one solve; returns True when the distress streak trips."""
        if isinstance(solve, SolverMonitor):
            iterations, converged = solve.iterations, solve.converged
        else:
            iterations = int(solve)
        struggling = (not converged) or iterations >= self.limit
        self.count = self.count + 1 if struggling else 0
        return self.count >= self.streak

    def reset(self) -> None:
        self.count = 0
