"""Solution projection: reuse previous solves as an initial-guess space.

Production Neko/Nek5000 accelerate the pressure solve by projecting each
new right-hand side onto the span of the last ``m`` solutions (Fischer's
"projection technique"): with an A-orthonormal basis ``{x_i}``, the best
initial guess is ``x0 = sum (x_i . b) x_i`` and the Krylov solver only has
to resolve the (much smaller) remainder.  In time-stepping flows the
right-hand sides vary slowly, so this typically cuts pressure iterations
by an integer factor.

The basis is A-orthonormalized with modified Gram-Schmidt using stored
``A x_i`` products -- no extra operator applications per solve beyond the
one needed for the new entry (which the caller already computed as part
of its residual evaluation, or we compute here once).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

import numpy as np
import numpy.typing as npt

from repro.solvers.monitor import SolverMonitor

__all__ = ["SolutionProjection"]

FloatArray = npt.NDArray[np.float64]
Operator = Callable[[FloatArray], FloatArray]
Dot = Callable[[FloatArray, FloatArray], float]


class _KrylovSolver(Protocol):
    """The solver surface :meth:`SolutionProjection.solve_with` drives."""

    tol: float
    atol: float

    def solve(
        self, b: FloatArray, x0: FloatArray | None = None
    ) -> tuple[FloatArray, SolverMonitor]: ...


class SolutionProjection:
    """Rolling A-orthonormal space of previous solutions.

    Parameters
    ----------
    amul, dot:
        Operator action and inner product (same objects the solver uses).
    max_dim:
        Maximum basis size; the oldest direction is dropped beyond it.
        (Neko's ``proj_pre`` default is 20; the memory cost is two fields
        per direction.)
    """

    def __init__(self, amul: Operator, dot: Dot, max_dim: int = 10) -> None:
        if max_dim < 1:
            raise ValueError("max_dim must be >= 1")
        self.amul = amul
        self.dot = dot
        self.max_dim = max_dim
        self._x: list[FloatArray] = []
        self._ax: list[FloatArray] = []
        self.last_guess_norm_fraction = 0.0

    @property
    def dim(self) -> int:
        return len(self._x)

    def clear(self) -> None:
        self._x.clear()
        self._ax.clear()

    def initial_guess(self, b: FloatArray) -> tuple[FloatArray, FloatArray]:
        """Best guess in the stored space and the deflated right-hand side.

        Returns ``(x0, b - A x0)``; with an A-orthonormal basis the
        coefficients are plain dots ``alpha_i = x_i . b``.
        """
        x0 = np.zeros_like(b)
        r = b.copy()
        if not self._x:
            self.last_guess_norm_fraction = 0.0
            return x0, r
        for xi, axi in zip(self._x, self._ax):
            alpha = self.dot(xi, r)
            if alpha != 0.0:
                x0 += alpha * xi
                r -= alpha * axi
        b_norm = float(np.sqrt(max(self.dot(b, b), 0.0)))
        r_norm = float(np.sqrt(max(self.dot(r, r), 0.0)))
        self.last_guess_norm_fraction = 1.0 - r_norm / b_norm if b_norm > 0 else 0.0
        return x0, r

    def update(self, dx: FloatArray, adx: FloatArray | None = None) -> None:
        """Fold the newly computed correction into the basis.

        ``dx`` is the solver's solution of the deflated problem; ``adx``
        its operator image (computed here if not supplied).  The direction
        is A-orthonormalized against the current basis; negligible
        remainders are discarded.
        """
        if adx is None:
            adx = self.amul(dx)
        d = dx.copy()
        ad = adx.copy()
        for xi, axi in zip(self._x, self._ax):
            c = self.dot(xi, ad)
            d -= c * xi
            ad -= c * axi
        norm2 = self.dot(d, ad)
        scale2 = self.dot(dx, adx)
        if norm2 <= 0.0 or (scale2 > 0 and norm2 < 1e-24 * scale2):
            return
        inv = 1.0 / float(np.sqrt(norm2))
        self._x.append(d * inv)
        self._ax.append(ad * inv)
        if len(self._x) > self.max_dim:
            self._x.pop(0)
            self._ax.pop(0)

    def solve_with(
        self, solver: _KrylovSolver, b: FloatArray
    ) -> tuple[FloatArray, SolverMonitor]:
        """Deflate, solve the remainder, update the space.

        ``solver`` must expose ``solve(b, x0=None) -> (x, monitor)`` (the
        CG/GMRES interface).  Returns ``(x, monitor)`` for the *full*
        problem.  The solver's absolute floor is temporarily raised to
        ``tol * ||b||`` so a deflated residual already below the original
        problem's target terminates immediately -- otherwise the *relative*
        criterion would chase ``tol`` more digits below an already tiny
        remainder.
        """
        x0, r = self.initial_guess(b)
        b_norm = float(np.sqrt(max(self.dot(b, b), 0.0)))
        old_atol: float | None = getattr(solver, "atol", None)
        if old_atol is not None:
            solver.atol = max(old_atol, solver.tol * b_norm)
        try:
            dx, mon = solver.solve(r)
        finally:
            if old_atol is not None:
                solver.atol = old_atol
        self.update(dx)
        return x0 + dx, mon

    # -- checkpoint support ----------------------------------------------------

    def state_arrays(self) -> dict[str, FloatArray]:
        """Basis arrays for checkpointing."""
        out: dict[str, FloatArray] = {}
        for i, (x, ax) in enumerate(zip(self._x, self._ax)):
            out[f"proj_x{i}"] = x
            out[f"proj_ax{i}"] = ax
        return out

    def load_state(self, arrays: dict[str, FloatArray]) -> None:
        """Restore the basis saved by :meth:`state_arrays`."""
        self.clear()
        i = 0
        while f"proj_x{i}" in arrays:
            # statcheck: ignore[hot-loop-allocation] -- checkpoint restore runs once; the basis must own its arrays
            self._x.append(np.array(arrays[f"proj_x{i}"], copy=True))
            # statcheck: ignore[hot-loop-allocation] -- checkpoint restore runs once; the basis must own its arrays
            self._ax.append(np.array(arrays[f"proj_ax{i}"], copy=True))
            i += 1
