"""Pipelined conjugate gradients (Ghysels & Vanroose 2014).

At extreme scale the two blocking allreduces of classic CG dominate (the
paper's Section 5.3 discussion of host-blocking reductions).  Pipelined CG
rearranges the recurrences so both reductions of an iteration are fused
into one, which can then overlap with the operator application -- the same
"hide the latency" philosophy as the overlapped preconditioner, applied to
the Krylov loop itself.  The iteration is algebraically equivalent to CG
in exact arithmetic (verified by tests) at the cost of extra vectors and
slightly weaker numerical stability.

The communication advantage is accounted for by the performance model
(one latency per iteration instead of two); in this in-process
implementation the benefit is structural, not wall-clock.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import numpy.typing as npt

from repro.observability.tracer import NULL_TRACER, TracerProtocol
from repro.solvers.monitor import SolverMonitor

__all__ = ["PipelinedConjugateGradient"]

FloatArray = npt.NDArray[np.float64]
Operator = Callable[[FloatArray], FloatArray]
Dot = Callable[[FloatArray, FloatArray], float]


def _copy(r: FloatArray) -> FloatArray:
    """Unpreconditioned default: ``M^{-1} = I`` (fresh copy, callers mutate)."""
    return r.copy()


class PipelinedConjugateGradient:
    """Preconditioned pipelined CG for SPD systems."""

    def __init__(
        self,
        amul: Operator,
        dot: Dot,
        precond: Operator | None = None,
        tol: float = 1e-8,
        maxiter: int = 500,
        atol: float = 1e-30,
        replacement_interval: int = 50,
        name: str = "pipecg",
        tracer: TracerProtocol | None = None,
    ) -> None:
        self.amul = amul
        self.dot = dot
        self.precond: Operator = precond if precond is not None else _copy
        self.tol = tol
        self.atol = atol
        self.maxiter = maxiter
        # Residual replacement: the pipelined recurrences drift from the
        # true residual by rounding; recomputing every N iterations
        # restores attainable accuracy (the standard Cools/Vanroose fix).
        self.replacement_interval = replacement_interval
        self.name = name
        self.tracer: TracerProtocol = tracer if tracer is not None else NULL_TRACER
        # Reduction accounting: fused (gamma, delta, ||r||) per iteration.
        self.reductions_per_iteration = 1

    def solve(
        self, b: FloatArray, x0: FloatArray | None = None
    ) -> tuple[FloatArray, SolverMonitor]:
        """Solve ``A x = b``; returns the solution and a monitor."""
        if not self.tracer.enabled:
            return self._solve(b, x0)
        with self.tracer.span(f"krylov.{self.name}") as sp:
            x, mon = self._solve(b, x0)
            sp.add("iterations", mon.iterations)
            sp.tags["converged"] = mon.converged
            sp.tags["final_residual"] = mon.final_residual
            return x, mon

    def _solve(
        self, b: FloatArray, x0: FloatArray | None = None
    ) -> tuple[FloatArray, SolverMonitor]:
        mon = SolverMonitor(tol=self.tol, atol=self.atol, name=self.name)
        x = np.zeros_like(b) if x0 is None else x0.copy()
        r = b - self.amul(x) if x0 is not None else b.copy()

        u = self.precond(r)
        w = self.amul(u)
        gamma = self.dot(r, u)
        delta = self.dot(w, u)
        rnorm = float(np.sqrt(max(self.dot(r, r), 0.0)))
        if mon.start(rnorm):
            return x, mon

        m = self.precond(w)
        n = self.amul(m)
        z = np.zeros_like(b)
        q = np.zeros_like(b)
        s = np.zeros_like(b)
        p = np.zeros_like(b)
        alpha_old = 0.0
        gamma_old = 0.0
        fresh_start = True

        for it in range(self.maxiter):
            if fresh_start:
                beta = 0.0
                alpha = gamma / delta
                fresh_start = False
            else:
                beta = gamma / gamma_old
                alpha = gamma / (delta - beta * gamma / alpha_old)

            # In-place recurrence updates: beta*v + y is bitwise identical
            # to y + beta*v and reuses the four direction buffers instead
            # of allocating them anew every iteration.
            z *= beta
            z += n
            q *= beta
            q += m
            s *= beta
            s += w
            p *= beta
            p += u

            x += alpha * p
            r -= alpha * s
            u -= alpha * q
            w -= alpha * z

            gamma_old = gamma
            alpha_old = alpha

            if (it + 1) % self.replacement_interval == 0:
                # Residual replacement: resynchronize the recurrences with
                # the true residual and restart the direction recurrences.
                r = b - self.amul(x)
                u = self.precond(r)
                w = self.amul(u)
                z[:] = 0.0
                q[:] = 0.0
                s[:] = 0.0
                p[:] = 0.0
                fresh_start = True

            # The fused reduction: (r.u), (w.u), ||r||^2 in one allreduce.
            gamma = self.dot(r, u)
            delta = self.dot(w, u)
            rnorm = float(np.sqrt(max(self.dot(r, r), 0.0)))
            if mon.step(rnorm):
                break

            m = self.precond(w)
            n = self.amul(m)
        return x, mon
