"""Asynchronous in-situ data analysis (Section 5.2).

The paper streams simulation data through ADIOS2 to Python post-processing
running on the otherwise-idle CPUs while the GPUs advance the solution.
The equivalent here is an in-process producer/consumer pipeline: the
simulation thread enqueues snapshots, a worker thread drains them through
registered processors -- the bundled ones being streaming POD (the
split-and-merge partitioned method of snapshots of refs. [18, 26]),
running statistics, and the lossy compressor as a processor.
"""

from repro.insitu.pipeline import InSituPipeline, Processor, PipelineStats
from repro.insitu.pod import StreamingPOD, direct_pod
from repro.insitu.processors import CompressionProcessor, RunningStatsProcessor, PODProcessor

__all__ = [
    "InSituPipeline",
    "Processor",
    "PipelineStats",
    "StreamingPOD",
    "direct_pod",
    "CompressionProcessor",
    "RunningStatsProcessor",
    "PODProcessor",
]
