"""The streaming pipeline: an in-process stand-in for ADIOS2 engines.

Design goals copied from the paper's workflow:

* the producer (the solver loop) must not stall unless the consumer is
  genuinely saturated (bounded queue = backpressure, counted);
* consumers run asynchronously on a worker thread ("the data can easily be
  streamed to a data processing routine, running on the mostly unused
  CPUs");
* everything is measured: queue waits, items, bytes, per-processor time --
  the numbers behind the "low impact on the simulation performance" claim.

Degradation is graceful, because at scale a post-processing routine *will*
eventually throw and the solver must not care: a failing processor is
retried with (injectable-clock) backoff, quarantined after repeated
failures while the healthy processors keep receiving data, and the worker
always keeps draining the queue -- a processor error can never leave the
producer blocked on a full queue.  Errors are reported at :meth:`close`
(``strict=True``, the default) or just recorded in the stats
(``strict=False``, the mode a resilient driver uses).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Processor", "InSituPipeline", "PipelineStats"]


class Processor:
    """Base class for in-situ consumers."""

    name = "processor"

    def process(self, tag: str, array: np.ndarray, sim_time: float) -> None:
        """Handle one snapshot (runs on the pipeline worker thread)."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Called once when the pipeline closes."""


@dataclass
class PipelineStats:
    """Counters for one pipeline lifetime."""

    items: int = 0
    bytes_in: int = 0
    producer_wait: float = 0.0
    processor_time: dict[str, float] = field(default_factory=dict)
    dropped: int = 0
    processor_failures: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    quarantined: list[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"items={self.items} bytes={self.bytes_in} "
            f"producer_wait={self.producer_wait:.4f}s dropped={self.dropped}"
        ]
        for k, v in sorted(self.processor_time.items()):
            fails = self.processor_failures.get(k, 0)
            suffix = f" ({fails} failures)" if fails else ""
            lines.append(f"  {k}: {v:.4f}s{suffix}")
        if self.quarantined:
            lines.append(f"  quarantined: {', '.join(self.quarantined)}")
        return "\n".join(lines)


class InSituPipeline:
    """Bounded-queue producer/consumer pipeline for field snapshots.

    Parameters
    ----------
    processors:
        Consumers invoked, in order, for every snapshot.
    max_queue:
        Queue bound; a full queue blocks the producer (``drop_on_full``
        instead discards, emulating a best-effort engine).
    retries:
        Extra attempts per processor per snapshot after a failure.
    backoff, backoff_base, sleep:
        Retry ``n`` waits ``backoff * backoff_base**n`` seconds before
        re-attempting, via the injectable ``sleep`` callable (tests pass a
        recorder; the default ``backoff=0`` never sleeps).
    quarantine_after:
        Consecutive failed *snapshots* (retries exhausted) after which a
        processor is quarantined: it stops receiving data and its
        ``finalize`` is skipped, while the healthy processors keep
        running.
    strict:
        If True (default), :meth:`close` re-raises the first processor
        error -- after finalizing the healthy processors.  If False,
        errors are only recorded in the stats, the graceful-degradation
        mode for production drivers.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`.
        The producer side keeps an ``insitu.queue_depth`` gauge current on
        every :meth:`put`, and :meth:`close` publishes the lifetime totals
        (items, bytes, per-processor latency, quarantines) via
        :func:`~repro.observability.bridge.publish_pipeline_stats`.
    anomalies:
        Optional :class:`~repro.observability.fleet.anomaly.AnomalyMonitor`.
        Every :meth:`put` feeds the queue depth to its
        ``insitu.queue_depth`` detector, so a consumer falling behind
        (depth climbing toward the bound) raises an ``anomaly.*`` event
        before the producer actually stalls.
    """

    def __init__(
        self,
        processors: list[Processor],
        max_queue: int = 8,
        drop_on_full: bool = False,
        retries: int = 0,
        backoff: float = 0.0,
        backoff_base: float = 2.0,
        sleep=time.sleep,
        quarantine_after: int = 3,
        strict: bool = True,
        metrics=None,
        anomalies=None,
    ) -> None:
        self.processors = processors
        self.queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self.drop_on_full = drop_on_full
        self.retries = retries
        self.backoff = backoff
        self.backoff_base = backoff_base
        self.sleep = sleep
        self.quarantine_after = quarantine_after
        self.strict = strict
        self.metrics = metrics
        self.anomalies = anomalies
        self.stats = PipelineStats()
        self._worker: threading.Thread | None = None
        self._closed = False
        self._error: BaseException | None = None
        self._consecutive_failures: dict[str, int] = {}
        self._quarantined: set[str] = set()

    # -- lifecycle ------------------------------------------------------------

    def open(self) -> "InSituPipeline":
        """Start the worker thread.  Usable as a context manager."""
        if self._worker is not None:
            raise RuntimeError("pipeline already open")
        self._closed = False
        self._worker = threading.Thread(target=self._drain, daemon=True, name="insitu")
        self._worker.start()
        return self

    def close(self) -> PipelineStats:
        """Flush outstanding items, stop the worker, finalize processors.

        Healthy (non-quarantined) processors are always finalized, even
        when a processor error is about to be re-raised (``strict``).
        """
        if self._worker is None:
            raise RuntimeError("pipeline not open")
        self.queue.put(None)  # sentinel
        self._worker.join()
        self._worker = None
        self._closed = True
        finalize_error: BaseException | None = None
        for p in self.processors:
            if p.name in self._quarantined:
                continue
            try:
                p.finalize()
            except BaseException as exc:
                if finalize_error is None:
                    finalize_error = exc
        if self.metrics is not None:
            from repro.observability.bridge import publish_pipeline_stats

            publish_pipeline_stats(self.stats, self.metrics)
        if self._error is not None and self.strict:
            raise RuntimeError("in-situ processor failed") from self._error
        if finalize_error is not None and self.strict:
            raise finalize_error
        return self.stats

    def __enter__(self) -> "InSituPipeline":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def quarantined(self) -> frozenset[str]:
        """Names of processors currently quarantined."""
        return frozenset(self._quarantined)

    @property
    def error(self) -> BaseException | None:
        """The first processor error seen (also kept in non-strict mode)."""
        return self._error

    # -- producer side -----------------------------------------------------------

    def put(self, tag: str, array: np.ndarray, sim_time: float = 0.0) -> bool:
        """Enqueue one snapshot (copied).  Returns False if dropped."""
        if self._worker is None or self._closed:
            raise RuntimeError("pipeline not open")
        item = (tag, array.copy(), sim_time)
        t0 = time.perf_counter()
        if self.drop_on_full:
            try:
                self.queue.put_nowait(item)
            except queue.Full:
                self.stats.dropped += 1
                return False
        else:
            self.queue.put(item)
        self.stats.producer_wait += time.perf_counter() - t0
        self.stats.items += 1
        self.stats.bytes_in += array.nbytes
        if self.metrics is not None or self.anomalies is not None:
            # qsize is advisory (the worker drains concurrently) but is
            # exactly the backpressure signal production dashboards watch.
            depth = self.queue.qsize()
            if self.metrics is not None:
                self.metrics.gauge("insitu.queue_depth").set(depth)
            if self.anomalies is not None:
                self.anomalies.observe("insitu.queue_depth", float(depth))
        return True

    # -- consumer side ----------------------------------------------------------

    def _drain(self) -> None:
        """Worker loop.

        Never exits before the sentinel: a processor failure must not stop
        consumption, or a producer blocked on the bounded queue would hang
        forever.  Items a processor could not handle count as dropped.
        """
        while True:
            item = self.queue.get()
            if item is None:
                return
            tag, array, sim_time = item
            active = 0
            failed = 0
            for p in self.processors:
                if p.name in self._quarantined:
                    continue
                active += 1
                if self._process_one(p, tag, array, sim_time):
                    self._consecutive_failures[p.name] = 0
                else:
                    failed += 1
                    streak = self._consecutive_failures.get(p.name, 0) + 1
                    self._consecutive_failures[p.name] = streak
                    if streak >= self.quarantine_after:
                        self._quarantined.add(p.name)
                        self.stats.quarantined.append(p.name)
            if active == 0 or failed:
                self.stats.dropped += 1

    def _process_one(self, p: Processor, tag, array, sim_time) -> bool:
        """One snapshot through one processor, with retry + backoff."""
        for attempt in range(self.retries + 1):
            t0 = time.perf_counter()
            try:
                p.process(tag, array, sim_time)
                return True
            except BaseException as exc:
                if self._error is None:
                    self._error = exc
                self.stats.processor_failures[p.name] = (
                    self.stats.processor_failures.get(p.name, 0) + 1
                )
                if attempt < self.retries:
                    self.stats.retries += 1
                    delay = self.backoff * self.backoff_base**attempt
                    if delay > 0:
                        self.sleep(delay)
            finally:
                dt = time.perf_counter() - t0
                self.stats.processor_time[p.name] = (
                    self.stats.processor_time.get(p.name, 0.0) + dt
                )
        return False
