"""The streaming pipeline: an in-process stand-in for ADIOS2 engines.

Design goals copied from the paper's workflow:

* the producer (the solver loop) must not stall unless the consumer is
  genuinely saturated (bounded queue = backpressure, counted);
* consumers run asynchronously on a worker thread ("the data can easily be
  streamed to a data processing routine, running on the mostly unused
  CPUs");
* everything is measured: queue waits, items, bytes, per-processor time --
  the numbers behind the "low impact on the simulation performance" claim.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Processor", "InSituPipeline", "PipelineStats"]


class Processor:
    """Base class for in-situ consumers."""

    name = "processor"

    def process(self, tag: str, array: np.ndarray, sim_time: float) -> None:
        """Handle one snapshot (runs on the pipeline worker thread)."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Called once when the pipeline closes."""


@dataclass
class PipelineStats:
    """Counters for one pipeline lifetime."""

    items: int = 0
    bytes_in: int = 0
    producer_wait: float = 0.0
    processor_time: dict[str, float] = field(default_factory=dict)
    dropped: int = 0

    def summary(self) -> str:
        lines = [
            f"items={self.items} bytes={self.bytes_in} "
            f"producer_wait={self.producer_wait:.4f}s dropped={self.dropped}"
        ]
        for k, v in sorted(self.processor_time.items()):
            lines.append(f"  {k}: {v:.4f}s")
        return "\n".join(lines)


class InSituPipeline:
    """Bounded-queue producer/consumer pipeline for field snapshots.

    Parameters
    ----------
    processors:
        Consumers invoked, in order, for every snapshot.
    max_queue:
        Queue bound; a full queue blocks the producer (``drop_on_full``
        instead discards, emulating a best-effort engine).
    """

    def __init__(
        self,
        processors: list[Processor],
        max_queue: int = 8,
        drop_on_full: bool = False,
    ) -> None:
        self.processors = processors
        self.queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self.drop_on_full = drop_on_full
        self.stats = PipelineStats()
        self._worker: threading.Thread | None = None
        self._closed = False
        self._error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------------

    def open(self) -> "InSituPipeline":
        """Start the worker thread.  Usable as a context manager."""
        if self._worker is not None:
            raise RuntimeError("pipeline already open")
        self._closed = False
        self._worker = threading.Thread(target=self._drain, daemon=True, name="insitu")
        self._worker.start()
        return self

    def close(self) -> PipelineStats:
        """Flush outstanding items, stop the worker, finalize processors."""
        if self._worker is None:
            raise RuntimeError("pipeline not open")
        self.queue.put(None)  # sentinel
        self._worker.join()
        self._worker = None
        self._closed = True
        if self._error is not None:
            raise RuntimeError("in-situ processor failed") from self._error
        for p in self.processors:
            p.finalize()
        return self.stats

    def __enter__(self) -> "InSituPipeline":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- producer side -----------------------------------------------------------

    def put(self, tag: str, array: np.ndarray, sim_time: float = 0.0) -> bool:
        """Enqueue one snapshot (copied).  Returns False if dropped."""
        if self._worker is None or self._closed:
            raise RuntimeError("pipeline not open")
        item = (tag, array.copy(), sim_time)
        t0 = time.perf_counter()
        if self.drop_on_full:
            try:
                self.queue.put_nowait(item)
            except queue.Full:
                self.stats.dropped += 1
                return False
        else:
            self.queue.put(item)
        self.stats.producer_wait += time.perf_counter() - t0
        self.stats.items += 1
        self.stats.bytes_in += array.nbytes
        return True

    # -- consumer side ----------------------------------------------------------

    def _drain(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                return
            tag, array, sim_time = item
            for p in self.processors:
                t0 = time.perf_counter()
                try:
                    p.process(tag, array, sim_time)
                except BaseException as exc:  # surfaces at close()
                    self._error = exc
                    return
                finally:
                    dt = time.perf_counter() - t0
                    self.stats.processor_time[p.name] = (
                        self.stats.processor_time.get(p.name, 0.0) + dt
                    )
