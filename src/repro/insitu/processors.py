"""Bundled in-situ processors: compression, running statistics, POD."""

from __future__ import annotations

import numpy as np

from repro.compression.api import CompressedField, SpectralCompressor
from repro.insitu.pipeline import Processor
from repro.insitu.pod import StreamingPOD

__all__ = ["CompressionProcessor", "RunningStatsProcessor", "PODProcessor"]


class CompressionProcessor(Processor):
    """Compress every snapshot and keep the compressed objects.

    This is the paper's synchronous-transform / asynchronous-encode path
    collapsed into one consumer: the solver thread hands over raw nodal
    data, the worker thread does the modal transform, truncation and
    entropy coding.
    """

    name = "compression"

    def __init__(self, compressor: SpectralCompressor, keep: bool = True) -> None:
        self.compressor = compressor
        self.keep = keep
        self.compressed: list[CompressedField] = []
        self.total_raw = 0
        self.total_compressed = 0

    def process(self, tag: str, array: np.ndarray, sim_time: float) -> None:
        cf = self.compressor.compress(array, name=tag, time=sim_time)
        self.total_raw += cf.raw_bytes
        self.total_compressed += cf.compressed_bytes
        if self.keep:
            self.compressed.append(cf)

    @property
    def overall_reduction(self) -> float:
        if self.total_raw == 0:
            return 0.0
        return 1.0 - self.total_compressed / self.total_raw


class RunningStatsProcessor(Processor):
    """Streaming mean/variance per tag (Welford's algorithm)."""

    name = "running-stats"

    def __init__(self) -> None:
        self._n: dict[str, int] = {}
        self._mean: dict[str, np.ndarray] = {}
        self._m2: dict[str, np.ndarray] = {}

    def process(self, tag: str, array: np.ndarray, sim_time: float) -> None:
        n = self._n.get(tag, 0) + 1
        if n == 1:
            self._mean[tag] = array.astype(np.float64).copy()
            self._m2[tag] = np.zeros_like(self._mean[tag])
        else:
            delta = array - self._mean[tag]
            self._mean[tag] += delta / n
            self._m2[tag] += delta * (array - self._mean[tag])
        self._n[tag] = n

    def mean(self, tag: str) -> np.ndarray:
        return self._mean[tag].copy()

    def variance(self, tag: str) -> np.ndarray:
        n = self._n[tag]
        if n < 2:
            return np.zeros_like(self._m2[tag])
        return self._m2[tag] / (n - 1)

    def count(self, tag: str) -> int:
        return self._n.get(tag, 0)


class PODProcessor(Processor):
    """Feed snapshots of one tag into a :class:`StreamingPOD`."""

    name = "streaming-pod"

    def __init__(self, pod: StreamingPOD, tag: str) -> None:
        self.pod = pod
        self.tag = tag

    def process(self, tag: str, array: np.ndarray, sim_time: float) -> None:
        if tag == self.tag:
            self.pod.push(array)

    def finalize(self) -> None:
        self.pod.finalize()
