"""Streaming proper orthogonal decomposition.

Implements the split-and-merge / approximate partitioned method of
snapshots the paper cites ([18] Liang et al., [26] Wang et al.): snapshots
are accumulated in batches; each batch is folded into a rank-limited
running SVD by concatenating ``[U_r diag(s_r), X_batch]`` and re-factoring.
The memory footprint is ``O(n x (r + batch))`` regardless of how many
snapshots stream past -- the property that lets the paper run POD on
simulations whose snapshot sets could never be stored.

Inner products can be weighted (pass the SEM mass matrix) so the modes are
orthonormal in the physical L^2 sense on nonuniform meshes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamingPOD", "direct_pod"]


def direct_pod(
    snapshots: np.ndarray, n_modes: int, weight: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Reference batch POD via one dense SVD.

    ``snapshots`` is ``(n_dofs, n_snaps)``; returns ``(modes, singular
    values)`` with modes orthonormal under the (weighted) inner product.
    """
    x = snapshots.astype(np.float64, copy=True)
    if weight is not None:
        sw = np.sqrt(weight).reshape(-1, 1)
        x *= sw
    u, s, _ = np.linalg.svd(x, full_matrices=False)
    k = min(n_modes, len(s))
    u = u[:, :k]
    if weight is not None:
        u = u / np.sqrt(weight).reshape(-1, 1)
    return u, s[:k]


class StreamingPOD:
    """Rank-limited incremental POD over a stream of snapshots.

    Parameters
    ----------
    n_modes:
        Rank retained by the running factorization.
    batch_size:
        Snapshots buffered before a merge (larger batches = fewer, bigger
        SVDs; the split-and-merge trade-off of ref. [18]).
    weight:
        Optional pointwise weights (flattened mass matrix) defining the
        inner product.
    """

    def __init__(
        self,
        n_modes: int,
        batch_size: int = 8,
        weight: np.ndarray | None = None,
    ) -> None:
        if n_modes < 1 or batch_size < 1:
            raise ValueError("n_modes and batch_size must be positive")
        self.n_modes = n_modes
        self.batch_size = batch_size
        self._sqrt_w = None if weight is None else np.sqrt(weight.reshape(-1))
        self._batch: list[np.ndarray] = []
        self._u: np.ndarray | None = None  # weighted-space basis
        self._s: np.ndarray | None = None
        self.n_seen = 0

    def push(self, snapshot: np.ndarray) -> None:
        """Add one snapshot (any shape; flattened internally)."""
        x = snapshot.reshape(-1).astype(np.float64)
        if self._sqrt_w is not None:
            x = x * self._sqrt_w
        self._batch.append(x)
        self.n_seen += 1
        if len(self._batch) >= self.batch_size:
            self._merge()

    def _merge(self) -> None:
        if not self._batch:
            return
        xb = np.stack(self._batch, axis=1)
        self._batch.clear()
        if self._u is None:
            blocks = xb
        else:
            blocks = np.concatenate([self._u * self._s[None, :], xb], axis=1)
        u, s, _ = np.linalg.svd(blocks, full_matrices=False)
        k = min(self.n_modes, len(s))
        self._u, self._s = u[:, :k], s[:k]

    def finalize(self) -> None:
        """Fold any buffered snapshots into the factorization."""
        self._merge()

    @property
    def modes(self) -> np.ndarray:
        """``(n_dofs, k)`` POD modes, orthonormal in the weighted inner product."""
        if self._u is None:
            raise RuntimeError("no snapshots processed yet")
        if self._sqrt_w is not None:
            return self._u / self._sqrt_w.reshape(-1, 1)
        return self._u.copy()

    @property
    def singular_values(self) -> np.ndarray:
        if self._s is None:
            raise RuntimeError("no snapshots processed yet")
        return self._s.copy()

    def project(self, snapshot: np.ndarray) -> np.ndarray:
        """Coefficients of a snapshot in the current POD basis."""
        x = snapshot.reshape(-1).astype(np.float64)
        if self._sqrt_w is not None:
            x = x * self._sqrt_w
        if self._u is None:
            raise RuntimeError("no snapshots processed yet")
        return self._u.T @ x

    def reconstruct(self, coefficients: np.ndarray) -> np.ndarray:
        """Field reconstructed from POD coefficients (flattened)."""
        if self._u is None:
            raise RuntimeError("no snapshots processed yet")
        x = self._u @ coefficients
        if self._sqrt_w is not None:
            x = x / self._sqrt_w
        return x
