"""Point evaluation of SEM fields at arbitrary physical locations.

The equivalent of Neko's probe/point-interpolation machinery (used for
history points, slices and visualization): locate the element containing
each query point by inverting the (possibly curved) geometry map with
Newton's method, then evaluate the nodal interpolant exactly.

Element location uses bounding boxes as candidates and accepts the first
element whose inverse map lands inside the reference cube (within a
tolerance); the inversion works for any element geometry because it
iterates on the *nodal* representation of the coordinates, not on an
assumed trilinear map.
"""

from __future__ import annotations

import numpy as np

from repro.sem.basis import derivative_matrix, lagrange_interpolation_matrix
from repro.sem.space import FunctionSpace

__all__ = ["FieldProbes"]


def _eval_rows(lx: int, r: float) -> tuple[np.ndarray, np.ndarray]:
    """Row vectors ``l_i(r)`` and ``l_i'(r)`` of the GLL cardinal basis."""
    row = lagrange_interpolation_matrix(np.array([r]), lx)[0]
    drow = lagrange_interpolation_matrix(np.array([r]), lx)[0] @ derivative_matrix(lx)
    return row, drow


class FieldProbes:
    """Located query points bound to a function space.

    Parameters
    ----------
    space:
        The function space whose fields will be probed.
    points:
        ``(n, 3)`` physical coordinates.  Points outside the mesh raise
        ``ValueError`` unless ``strict=False``, in which case they are
        flagged in :attr:`found` and evaluate to ``nan``.
    """

    def __init__(
        self,
        space: FunctionSpace,
        points: np.ndarray,
        strict: bool = True,
        newton_tol: float = 1e-11,
        ref_tol: float = 1e-8,
    ) -> None:
        self.space = space
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        self.points = pts
        n = pts.shape[0]
        lx = space.lx

        # Element bounding boxes (slightly inflated).
        coords = np.stack(
            [space.x.reshape(space.nelv, -1), space.y.reshape(space.nelv, -1),
             space.z.reshape(space.nelv, -1)], axis=2,
        )
        lo = coords.min(axis=1)
        hi = coords.max(axis=1)
        margin = 1e-8 + 1e-6 * (hi - lo)
        lo -= margin
        hi += margin

        self.element = np.full(n, -1, dtype=np.int64)
        self.rst = np.zeros((n, 3))
        self.found = np.zeros(n, dtype=bool)

        for ip, p in enumerate(pts):
            candidates = np.flatnonzero(  # statcheck: ignore[backend-purity] -- probe location runs once at setup
                np.all((p >= lo) & (p <= hi), axis=1)  # statcheck: ignore[backend-purity] -- probe location runs once at setup
            )
            for e in candidates:
                ok, rst = self._invert(int(e), p, newton_tol, ref_tol)
                if ok:
                    self.element[ip] = int(e)
                    self.rst[ip] = rst
                    self.found[ip] = True
                    break
            if not self.found[ip] and strict:
                raise ValueError(f"point {p} not found in any element")

        # Precompute basis rows for fast repeated evaluation.
        self._rows = []
        for ip in range(n):
            if not self.found[ip]:
                self._rows.append(None)
                continue
            rr, ss, tt = self.rst[ip]
            li = lagrange_interpolation_matrix(np.array([rr]), lx)[0]  # statcheck: ignore[backend-purity] -- probe location runs once at setup
            lj = lagrange_interpolation_matrix(np.array([ss]), lx)[0]  # statcheck: ignore[backend-purity] -- probe location runs once at setup
            lk = lagrange_interpolation_matrix(np.array([tt]), lx)[0]  # statcheck: ignore[backend-purity] -- probe location runs once at setup
            self._rows.append((li, lj, lk))
        # Batched layout for evaluate(): stacked rows over the found probes,
        # so one einsum evaluates every probe (the per-probe Python loop was
        # the hot spot of in-situ sampling).
        self._found_idx = np.flatnonzero(self.found)
        if len(self._found_idx):
            rows = [self._rows[ip] for ip in self._found_idx]
            self._li = np.stack([r[0] for r in rows])
            self._lj = np.stack([r[1] for r in rows])
            self._lk = np.stack([r[2] for r in rows])
        else:
            self._li = self._lj = self._lk = np.zeros((0, lx))

    # -- geometry inversion -----------------------------------------------------

    def _geom_at(self, e: int, rst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Position and Jacobian of the geometry map at a reference point.

        One batched-``matmul`` sweep per tensor axis evaluates all eight
        (value, derivative) basis combinations of all three coordinates at
        once -- the same contraction structure as the field operators,
        replacing twelve scalar ``einsum`` reductions per Newton step.
        """
        lx = self.space.lx
        li = lagrange_interpolation_matrix(np.array([rst[0]]), lx)[0]
        lj = lagrange_interpolation_matrix(np.array([rst[1]]), lx)[0]
        lk = lagrange_interpolation_matrix(np.array([rst[2]]), lx)[0]
        # Derivative rows: l'(r) = l(r) @ D (differentiate-then-interpolate
        # is exact for the polynomial basis).
        d = np.asarray(derivative_matrix(lx))
        rows_i = np.stack([li, li @ d])  # (2, lx): value row, derivative row
        rows_j = np.stack([lj, lj @ d])
        rows_k = np.stack([lk, lk @ d])

        # coords[dim] = (lx, lx, lx) nodal coordinates of element e.
        coords = np.stack(
            [self.space.x[e], self.space.y[e], self.space.z[e]]
        )
        # Contract axis by axis; c[dim, kt, js, ir] holds the interpolant
        # with value (0) or derivative (1) rows along each direction.
        c = np.matmul(rows_k, coords.reshape(3, lx, lx * lx))  # (3, 2, lx*lx)
        c = np.matmul(rows_j, c.reshape(3, 2, lx, lx))  # (3, 2, 2, lx)
        c = np.matmul(c, rows_i.T)  # (3, 2, 2, 2)

        pos = c[:, 0, 0, 0].copy()
        jac = np.empty((3, 3))
        jac[:, 0] = c[:, 0, 0, 1]  # d/dr
        jac[:, 1] = c[:, 0, 1, 0]  # d/ds
        jac[:, 2] = c[:, 1, 0, 0]  # d/dt
        return pos, jac

    def _invert(
        self, e: int, p: np.ndarray, newton_tol: float, ref_tol: float
    ) -> tuple[bool, np.ndarray]:
        rst = np.zeros(3)
        scale = max(1.0, float(np.abs(p).max()))
        for _ in range(25):
            pos, jac = self._geom_at(e, rst)
            res = pos - p
            if np.abs(res).max() < newton_tol * scale:  # statcheck: ignore[backend-purity] -- Newton point inversion runs once at setup
                break
            try:
                step = np.linalg.solve(jac, res)  # statcheck: ignore[backend-purity] -- Newton point inversion runs once at setup
            except np.linalg.LinAlgError:
                return False, rst
            # Damped to stay in the basin for curved elements.
            step = np.clip(step, -0.5, 0.5)  # statcheck: ignore[backend-purity] -- Newton point inversion runs once at setup
            rst -= step
            if np.abs(rst).max() > 2.0:  # statcheck: ignore[backend-purity] -- Newton point inversion runs once at setup
                return False, rst
        else:
            return False, rst
        inside = np.all(np.abs(rst) <= 1.0 + ref_tol)
        return bool(inside), np.clip(rst, -1.0, 1.0)

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, field: np.ndarray) -> np.ndarray:
        """Values of a nodal field at the probe points (nan where not found)."""
        if field.shape != self.space.shape:
            raise ValueError(f"field shape {field.shape} != {self.space.shape}")
        out = np.full(self.points.shape[0], np.nan)
        if len(self._found_idx):
            lx = self.space.lx
            f = field[self.element[self._found_idx]]  # (p, lx, lx, lx)
            p = f.shape[0]
            # Batched matmul, one tensor axis at a time (the same
            # (batch, n, n) contraction shape as the field operators).
            t = np.matmul(self._lk[:, None, :], f.reshape(p, lx, lx * lx))
            t = np.matmul(self._lj[:, None, :], t.reshape(p, lx, lx))
            vals = np.matmul(t, self._li[:, :, None]).reshape(p)
            out[self._found_idx] = vals
        return out

    @property
    def n_found(self) -> int:
        return int(np.count_nonzero(self.found))
