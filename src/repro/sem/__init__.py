"""Spectral-element method substrate.

This package implements the discretization layer of the framework: GLL
quadrature and polynomial bases, hexahedral meshes (box and butterfly
cylinder), the SEM function space with geometric factors, the two-phase
gather--scatter operation, matrix-free tensor-product operators, 3/2-rule
dealiasing, and boundary-condition masks.

The layout of all field data is ``(nelv, lx, lx, lx)`` with the *last* axis
the fastest-varying (r) direction, matching the memory layout used by
spectral-element codes for cache-friendly tensor contractions.
"""

from repro.sem.quadrature import gll_points_weights, gauss_legendre_points_weights
from repro.sem.basis import (
    legendre_polynomial,
    lagrange_interpolation_matrix,
    derivative_matrix,
    modal_transform_matrix,
)
from repro.sem.mesh import HexMesh, box_mesh, cylinder_mesh
from repro.sem.space import FunctionSpace
from repro.sem.field import Field
from repro.sem.coef import Coefficients
from repro.sem.gather_scatter import GatherScatter
from repro.sem.operators import (
    local_grad,
    physical_grad,
    ax_helmholtz,
    ax_poisson,
    weak_divergence,
    curl,
)
from repro.sem.dealias import Dealiaser
from repro.sem.bc import DirichletBC, BoundaryMask
from repro.sem.probes import FieldProbes
from repro.sem.filter import ModalFilter

__all__ = [
    "gll_points_weights",
    "gauss_legendre_points_weights",
    "legendre_polynomial",
    "lagrange_interpolation_matrix",
    "derivative_matrix",
    "modal_transform_matrix",
    "HexMesh",
    "box_mesh",
    "cylinder_mesh",
    "FunctionSpace",
    "Field",
    "Coefficients",
    "GatherScatter",
    "local_grad",
    "physical_grad",
    "ax_helmholtz",
    "ax_poisson",
    "weak_divergence",
    "curl",
    "Dealiaser",
    "DirichletBC",
    "BoundaryMask",
    "FieldProbes",
    "ModalFilter",
]
