"""Polynomial bases and 1-D operator matrices for the SEM.

Everything in the 3-D solver is built from tensor products of the small
dense matrices constructed here: the Lagrange derivative matrix on the GLL
grid, interpolation matrices between grids (used by dealiasing, multigrid
level transfer and the coarse-space restriction), and the nodal<->modal
Legendre transform used by the lossy compressor.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.sem.quadrature import gll_points_weights, legendre_value

__all__ = [
    "legendre_polynomial",
    "lagrange_interpolation_matrix",
    "derivative_matrix",
    "modal_transform_matrix",
    "vandermonde_pair",
    "lagrange_weights",
]


def legendre_polynomial(n: int, x: np.ndarray) -> np.ndarray:
    """Evaluate ``P_n`` at ``x`` (thin re-export for API convenience)."""
    return legendre_value(n, x)


@functools.lru_cache(maxsize=None)
def lagrange_weights(lx: int) -> np.ndarray:
    """Barycentric weights of the Lagrange basis on the ``lx`` GLL points."""
    x, _ = gll_points_weights(lx)
    diff = x[:, None] - x[None, :]
    np.fill_diagonal(diff, 1.0)
    w = 1.0 / np.prod(diff, axis=1)
    w.setflags(write=False)
    return w


def lagrange_interpolation_matrix(x_to: np.ndarray, lx_from: int) -> np.ndarray:
    """Matrix interpolating nodal values on the ``lx_from`` GLL grid to ``x_to``.

    Row ``i`` contains the Lagrange cardinal functions ``l_j`` evaluated at
    ``x_to[i]`` using the numerically stable barycentric form.  Points of
    ``x_to`` that coincide with a source node produce an exact unit row.
    """
    x_from, _ = gll_points_weights(lx_from)
    w = lagrange_weights(lx_from)
    x_to = np.atleast_1d(np.asarray(x_to, dtype=np.float64))
    diff = x_to[:, None] - x_from[None, :]
    exact = np.abs(diff) < 1e-14
    # Regularize exact hits; those rows are overwritten below.
    diff = np.where(exact, 1.0, diff)
    terms = w[None, :] / diff
    mat = terms / np.sum(terms, axis=1, keepdims=True)
    hit_rows = np.any(exact, axis=1)
    if np.any(hit_rows):
        mat[hit_rows] = exact[hit_rows].astype(np.float64)
    return mat


@functools.lru_cache(maxsize=None)
def derivative_matrix(lx: int) -> np.ndarray:
    """First-derivative (collocation) matrix on the ``lx`` GLL points.

    ``(D u)_i = u'(x_i)`` for ``u`` the interpolating polynomial of the nodal
    values.  Built from the barycentric weights with the negative-sum trick
    for the diagonal, which is the numerically preferred construction.
    """
    x, _ = gll_points_weights(lx)
    w = lagrange_weights(lx)
    diff = x[:, None] - x[None, :]
    np.fill_diagonal(diff, 1.0)
    d = (w[None, :] / w[:, None]) / diff
    np.fill_diagonal(d, 0.0)
    np.fill_diagonal(d, -np.sum(d, axis=1))
    d.setflags(write=False)
    return d


@functools.lru_cache(maxsize=None)
def modal_transform_matrix(lx: int) -> np.ndarray:
    """Vandermonde matrix ``V`` of orthonormalized Legendre modes at GLL points.

    ``V[i, j] = \\tilde P_j(x_i)`` with ``\\tilde P_j = P_j * sqrt((2j+1)/2)``
    so that the modes are orthonormal in L^2(-1, 1).  Nodal values ``u`` and
    modal coefficients ``uh`` are related by ``u = V uh``; since the GLL
    quadrature integrates ``P_j P_k`` exactly only for ``j + k <= 2N - 1``,
    the *exact* inverse ``V^{-1}`` is used for the forward transform rather
    than the quadrature-based quasi-inverse (this matters for the top mode
    of the compressor's error bound).
    """
    x, _ = gll_points_weights(lx)
    v = np.empty((lx, lx), dtype=np.float64)
    for j in range(lx):
        # statcheck: ignore[backend-purity] -- Vandermonde assembled once per order
        v[:, j] = legendre_value(j, x) * np.sqrt((2 * j + 1) / 2.0)
    v.setflags(write=False)
    return v


@functools.lru_cache(maxsize=None)
def vandermonde_pair(lx: int) -> tuple[np.ndarray, np.ndarray]:
    """``(V, V^{-1})`` for :func:`modal_transform_matrix`, cached per order.

    ``V`` maps modal coefficients to nodal values and ``V^{-1}`` is its
    exact inverse (see :func:`modal_transform_matrix` for why the exact
    inverse is used); both are frozen read-only since they are shared
    through the cache.
    """
    v = np.asarray(modal_transform_matrix(lx))
    vinv = np.linalg.inv(v)
    v.setflags(write=False)
    vinv.setflags(write=False)
    return v, vinv
