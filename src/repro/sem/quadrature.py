"""Gauss--Lobatto--Legendre and Gauss--Legendre quadrature rules.

The spectral-element method collocates the solution on Gauss--Lobatto--
Legendre (GLL) points, which include the element end points so that C^0
continuity can be enforced by the gather--scatter operation.  Dealiased
(overintegrated) products are evaluated on a finer GLL grid following the
3/2-rule, as done in Neko and Nek5000.

All routines are pure NumPy, use double precision throughout (the paper
reports double-precision-only runs) and are cached because quadrature
construction is called from many layers of the solver stack.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = [
    "gll_points_weights",
    "gauss_legendre_points_weights",
    "legendre_value",
    "legendre_and_derivative",
]


def legendre_value(n: int, x: np.ndarray) -> np.ndarray:
    """Evaluate the Legendre polynomial ``P_n`` at points ``x``.

    Uses the three-term Bonnet recurrence, vectorized over ``x``.
    """
    x = np.asarray(x, dtype=np.float64)
    if n == 0:
        return np.ones_like(x)
    if n == 1:
        return x.copy()
    p_prev = np.ones_like(x)
    p = x.copy()
    for k in range(1, n):
        p_next = ((2 * k + 1) * x * p - k * p_prev) / (k + 1)
        p_prev, p = p, p_next
    return p


def legendre_and_derivative(n: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``P_n`` and ``P_n'`` at points ``x`` simultaneously.

    The derivative uses the stable relation
    ``(1 - x^2) P_n'(x) = n (P_{n-1}(x) - x P_n(x))``, with the end points
    ``x = +-1`` handled by the closed form ``P_n'(+-1) = (+-1)^{n-1} n(n+1)/2``.
    """
    x = np.asarray(x, dtype=np.float64)
    p = legendre_value(n, x)
    if n == 0:
        return p, np.zeros_like(x)
    pm1 = legendre_value(n - 1, x)
    denom = 1.0 - x * x
    interior = np.abs(denom) > 1e-14
    dp = np.empty_like(x)
    dp[interior] = n * (pm1[interior] - x[interior] * p[interior]) / denom[interior]
    edge = ~interior
    if np.any(edge):
        sign = np.where(x[edge] > 0.0, 1.0, (-1.0) ** (n - 1))
        dp[edge] = sign * n * (n + 1) / 2.0
    return p, dp


@functools.lru_cache(maxsize=None)
def gll_points_weights(lx: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``lx`` Gauss--Lobatto--Legendre points and weights on [-1, 1].

    ``lx = N + 1`` where ``N`` is the polynomial degree.  The interior points
    are the roots of ``P_N'`` found by Newton iteration from Chebyshev--Gauss--
    Lobatto initial guesses; the weights are ``w_i = 2 / (N (N+1) P_N(x_i)^2)``.

    The returned arrays are read-only views so that the cache cannot be
    corrupted by callers mutating them in place.
    """
    if lx < 2:
        raise ValueError(f"GLL rule needs at least 2 points, got lx={lx}")
    n = lx - 1
    # Chebyshev-Gauss-Lobatto nodes as the initial guess.
    x = -np.cos(np.pi * np.arange(lx) / n)
    if lx > 2:
        for _ in range(100):
            p, dp = legendre_and_derivative(n, x[1:-1])
            # Newton on f(x) = P_n'(x); f'(x) from the Legendre ODE:
            # (1-x^2) P_n'' - 2x P_n' + n(n+1) P_n = 0.
            xi = x[1:-1]
            d2p = (2.0 * xi * dp - n * (n + 1) * p) / (1.0 - xi * xi)
            step = dp / d2p
            x[1:-1] -= step
            if np.max(np.abs(step)) < 1e-15:  # statcheck: ignore[backend-purity] -- quadrature Newton runs once per order
                break
    x[0], x[-1] = -1.0, 1.0
    pn = legendre_value(n, x)
    w = 2.0 / (n * (n + 1) * pn * pn)
    # Symmetrize to kill the last bit of Newton asymmetry.
    x = 0.5 * (x - x[::-1])
    w = 0.5 * (w + w[::-1])
    x.setflags(write=False)
    w.setflags(write=False)
    return x, w


@functools.lru_cache(maxsize=None)
def gauss_legendre_points_weights(lx: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``lx``-point Gauss--Legendre rule on [-1, 1].

    Used by the dealiasing layer when a strictly interior quadrature is
    preferred; delegates to ``numpy.polynomial.legendre.leggauss`` which is
    accurate to machine precision for the orders used here.
    """
    if lx < 1:
        raise ValueError(f"GL rule needs at least 1 point, got lx={lx}")
    x, w = np.polynomial.legendre.leggauss(lx)
    x.setflags(write=False)
    w.setflags(write=False)
    return x, w
