"""The SEM function space: mesh x polynomial degree x metric terms.

A :class:`FunctionSpace` bundles everything the operators need: GLL nodes
and weights, the 1-D derivative matrix, the nodal coordinates of every
element, the geometric factors, the gather--scatter operator and the
assembled inverse "counting" matrix used to turn additively-stored data
back into pointwise values.
"""

from __future__ import annotations

import numpy as np

from repro.sem.basis import derivative_matrix
from repro.sem.coef import Coefficients
from repro.sem.gather_scatter import GatherScatter
from repro.sem.mesh import HexMesh
from repro.sem.quadrature import gll_points_weights

__all__ = ["FunctionSpace"]


class FunctionSpace:
    """Scalar C^0 spectral-element space of degree ``lx - 1`` on a hex mesh."""

    def __init__(self, mesh: HexMesh, lx: int) -> None:
        if lx < 2:
            raise ValueError(f"polynomial space needs lx >= 2 points per direction, got {lx}")
        self.mesh = mesh
        self.lx = lx
        self.nelv = mesh.nelv
        self.points, self.weights = gll_points_weights(lx)
        self.dx = derivative_matrix(lx)
        self.x, self.y, self.z = mesh.gll_coordinates(lx)
        self.shape = (self.nelv, lx, lx, lx)
        self.n_dofs_local = int(np.prod(self.shape))
        self.coef = Coefficients.build(self.x, self.y, self.z, np.asarray(self.weights), np.asarray(self.dx))

        coords = np.stack(
            [self.x.reshape(-1), self.y.reshape(-1), self.z.reshape(-1)], axis=1
        )
        self.gs = GatherScatter(coords, self.shape, periodic_image=mesh.periodic_image)
        self.n_dofs = self.gs.n_global

        # Assembled diagonal mass and its inverse: dssum(B) is the true
        # diagonal of the assembled mass matrix.
        self.mass_assembled = self.gs.add(self.coef.mass)
        self.inv_mass_assembled = 1.0 / self.mass_assembled

    # -- integral helpers ----------------------------------------------------

    def integrate(self, u: np.ndarray) -> float:
        """Integral of a continuous nodal field over the domain."""
        return float(np.sum(u * self.coef.mass))

    def mean(self, u: np.ndarray) -> float:
        """Volume average of a continuous nodal field."""
        return self.integrate(u) / self.coef.volume

    def norm_l2(self, u: np.ndarray) -> float:
        """Mass-weighted L^2 norm (the paper's reconstruction-error metric)."""
        return float(np.sqrt(np.sum(u * u * self.coef.mass)))

    def norm_max(self, u: np.ndarray) -> float:
        """Pointwise maximum-magnitude norm (cross-backend divergence metric)."""
        return float(np.max(np.abs(u)))

    def relative_l2_error(self, u: np.ndarray, exact: np.ndarray) -> float:
        """``||u - exact|| / ||exact||`` in the mass-weighted L^2 norm.

        Falls back to the absolute norm when ``exact`` is (numerically)
        zero, so manufactured solutions that vanish at some instant do not
        divide by zero.
        """
        denom = self.norm_l2(exact)
        num = self.norm_l2(u - exact)
        if denom < 1e-300:
            return num
        return num / denom

    def zeros(self) -> np.ndarray:
        """A zero field with the elementwise layout of this space."""
        return np.zeros(self.shape)

    def project_continuous(self, u: np.ndarray) -> np.ndarray:
        """Mass-weighted projection of (possibly discontinuous) data onto C^0.

        This is the standard SEM smoothing ``Q v = B_assembled^{-1} dssum(B v)``
        used after any operation that breaks interelement continuity.
        """
        return self.gs.add(self.coef.mass * u) * self.inv_mass_assembled

    def interpolate(self, fn) -> np.ndarray:
        """Nodal interpolation of a callable ``fn(x, y, z)``."""
        return np.asarray(fn(self.x, self.y, self.z), dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FunctionSpace(nelv={self.nelv}, lx={self.lx}, "
            f"unique dofs={self.n_dofs})"
        )
