"""Boundary conditions: Dirichlet masks and inhomogeneous values.

The SEM enforces essential (Dirichlet) conditions strongly: boundary dofs
are removed from the solve by a 0/1 mask and their values written directly
into the solution.  Natural (zero-Neumann) conditions need no action in the
weak form -- the insulated sidewall of the RBC cell and the pressure
boundaries are handled this way, as in the paper's production setup.

Masks must be combined across elements with a gather--scatter ``min`` so
that a node on the *edge* of a Dirichlet face is masked in every element
that touches it, even elements with no face on the boundary.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.sem.space import FunctionSpace

__all__ = ["BoundaryMask", "DirichletBC", "combine_masks"]


class BoundaryMask:
    """A 0/1 multiplicative mask that zeroes dofs on selected boundaries."""

    def __init__(self, space: FunctionSpace, labels: Sequence[str]) -> None:
        self.space = space
        self.labels = list(labels)
        mask = np.ones(space.shape)
        lx = space.lx
        for label in self.labels:
            try:
                facets = space.mesh.boundary_facets[label]
            except KeyError:
                known = ", ".join(space.mesh.boundary_labels()) or "<none>"
                raise KeyError(
                    f"unknown boundary label {label!r}; mesh has: {known}"
                ) from None
            for e, face in facets:
                idx = (int(e), *space.mesh.facet_node_index(int(face), lx))
                mask[idx] = 0.0
        # Propagate zeros to duplicated dofs on neighbouring elements.
        self.mask = space.gs.min(mask)
        self.n_masked = int(np.count_nonzero(self.mask == 0.0))

    def apply(self, u: np.ndarray) -> np.ndarray:
        """Zero the masked dofs (in place) and return ``u``."""
        u *= self.mask
        return u


class DirichletBC:
    """Inhomogeneous Dirichlet condition ``u = g`` on selected boundaries.

    ``g`` may be a constant or a callable ``g(x, y, z)`` evaluated at the
    boundary nodes.  The Krylov solvers work on the homogeneous problem: the
    caller lifts the boundary data with :meth:`set_values`, solves for the
    masked correction and adds it back.
    """

    def __init__(
        self,
        space: FunctionSpace,
        labels: Sequence[str],
        value: float | Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray] = 0.0,
    ) -> None:
        self.space = space
        self.boundary = BoundaryMask(space, labels)
        self.mask = self.boundary.mask
        if callable(value):
            vals = np.asarray(value(space.x, space.y, space.z), dtype=np.float64)
            vals = np.broadcast_to(vals, space.shape).copy()
        else:
            vals = np.full(space.shape, float(value))
        # Retain values only where the mask is zero.
        self.values = np.where(self.mask == 0.0, vals, 0.0)

    def set_values(self, u: np.ndarray) -> np.ndarray:
        """Write the boundary values into ``u`` (in place) and return it."""
        np.copyto(u, self.values, where=self.mask == 0.0)
        return u

    def zero(self, u: np.ndarray) -> np.ndarray:
        """Zero the constrained dofs of ``u`` (in place) and return it."""
        u *= self.mask
        return u


def combine_masks(bcs: Sequence[DirichletBC | BoundaryMask], space: FunctionSpace) -> np.ndarray:
    """Pointwise product of the masks of several boundary conditions."""
    mask = np.ones(space.shape)
    for bc in bcs:
        mask *= bc.mask
    return mask
