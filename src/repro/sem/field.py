"""Named fields over a function space.

The solver internals operate on raw ``(nelv, lx, lx, lx)`` arrays for speed;
:class:`Field` is the user-facing handle that couples data to its space and
offers the common reductions.  It deliberately stays a thin wrapper -- the
data array is always directly accessible as ``.data``.
"""

from __future__ import annotations

import numpy as np

from repro.sem.space import FunctionSpace

__all__ = ["Field", "VectorField"]


class Field:
    """A scalar nodal field on a :class:`FunctionSpace`."""

    def __init__(self, space: FunctionSpace, name: str = "field", data: np.ndarray | None = None) -> None:
        self.space = space
        self.name = name
        if data is None:
            self.data = space.zeros()
        else:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != space.shape:
                raise ValueError(f"data shape {data.shape} != space shape {space.shape}")
            self.data = data

    def copy(self, name: str | None = None) -> "Field":
        """Deep copy, optionally renamed."""
        return Field(self.space, name or self.name, self.data.copy())

    def fill(self, value: float) -> "Field":
        """Set every dof to ``value`` (in place)."""
        self.data.fill(value)
        return self

    def set_from(self, fn) -> "Field":
        """Interpolate ``fn(x, y, z)`` into this field (in place)."""
        self.data[:] = self.space.interpolate(fn)
        return self

    @property
    def l2(self) -> float:
        """Mass-weighted L^2 norm."""
        return self.space.norm_l2(self.data)

    @property
    def mean(self) -> float:
        """Volume average."""
        return self.space.mean(self.data)

    @property
    def minimum(self) -> float:
        return float(np.min(self.data))

    @property
    def maximum(self) -> float:
        return float(np.max(self.data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Field({self.name!r}, n={self.space.n_dofs}, mean={self.mean:.4g})"


class VectorField:
    """A 3-component vector field (velocity, vorticity, ...)."""

    def __init__(self, space: FunctionSpace, name: str = "vector") -> None:
        self.space = space
        self.name = name
        self.x = Field(space, f"{name}_x")
        self.y = Field(space, f"{name}_y")
        self.z = Field(space, f"{name}_z")

    @property
    def components(self) -> tuple[Field, Field, Field]:
        return (self.x, self.y, self.z)

    def magnitude(self) -> Field:
        """Pointwise Euclidean magnitude as a new scalar field."""
        mag = np.sqrt(self.x.data**2 + self.y.data**2 + self.z.data**2)
        return Field(self.space, f"|{self.name}|", mag)

    def kinetic_energy(self) -> float:
        """Volume-integrated kinetic energy ``0.5 * int |u|^2``."""
        sq = self.x.data**2 + self.y.data**2 + self.z.data**2
        return 0.5 * self.space.integrate(sq)
