"""Gather--scatter: the C^0-continuity operation of the SEM.

Duplicated degrees of freedom on shared element faces/edges/vertices are
combined (summed, min-ed, ...) and redistributed.  This is the single
communication primitive the whole solver is built on -- the paper calls it
"the key component of the scalability in Neko".

The single-process implementation here derives the global numbering from
node *coordinates* (with an optional periodic wrapping), which handles any
conforming mesh without explicit topology, and executes the operation as a
``bincount`` gather followed by a fancy-indexing scatter -- both memory-
bandwidth-bound, matching the character of the real kernel.  The two-phase
(rank-local / shared) variant used by the rank simulator lives in
:mod:`repro.comm.distributed_gs`.
"""

from __future__ import annotations

from collections.abc import Callable
from time import perf_counter

import numpy as np

__all__ = ["GatherScatter", "build_global_numbering"]


def build_global_numbering(
    coords: np.ndarray,
    periodic_image: Callable[[np.ndarray], np.ndarray] | None = None,
    tol: float | None = None,
) -> tuple[np.ndarray, int]:
    """Assign a global id to every node, identifying coincident coordinates.

    Parameters
    ----------
    coords:
        ``(n, 3)`` node coordinates (duplicates across element boundaries).
    periodic_image:
        Optional canonicalization applied before matching (implements
        periodic directions by wrapping one side onto the other).
    tol:
        Coordinates closer than ``tol`` are considered identical.  By default
        a tolerance is derived from the smallest nonzero nodal spacing.

    Returns
    -------
    (global_ids, n_global)
    """
    coords = np.asarray(coords, dtype=np.float64).reshape(-1, 3)
    if periodic_image is not None:
        coords = periodic_image(coords)
    if tol is None:
        # Smallest nonzero spacing along any axis bounds how close two
        # *distinct* nodes can be; use a small fraction of it.
        spacing = np.inf
        for d in range(3):
            # statcheck: ignore[backend-purity] -- numbering built once per space
            vals = np.unique(np.round(coords[:, d], decimals=12))
            if len(vals) > 1:
                # statcheck: ignore[backend-purity] -- numbering built once per space
                spacing = min(spacing, float(np.min(np.diff(vals))))
        if not np.isfinite(spacing):
            spacing = 1.0
        tol = max(spacing * 1e-4, 1e-12)

    quant = np.round(coords / tol).astype(np.int64)
    _, inverse = np.unique(quant, axis=0, return_inverse=True)
    return inverse.astype(np.int64), int(inverse.max()) + 1


class GatherScatter:
    """Gather--scatter operator for a fixed global numbering.

    Construct once per function space; apply with :meth:`add` (dssum),
    :meth:`min`, :meth:`max`, or :meth:`average`.
    """

    def __init__(
        self,
        coords: np.ndarray,
        shape: tuple[int, ...],
        periodic_image: Callable[[np.ndarray], np.ndarray] | None = None,
        tol: float | None = None,
    ) -> None:
        self.shape = tuple(shape)
        self.global_ids, self.n_global = build_global_numbering(coords, periodic_image, tol)
        if self.global_ids.shape[0] != int(np.prod(self.shape)):
            raise ValueError(
                f"coords count {self.global_ids.shape[0]} does not match field "
                f"shape {self.shape}"
            )
        mult = np.bincount(self.global_ids, minlength=self.n_global).astype(np.float64)
        self.multiplicity = mult[self.global_ids].reshape(self.shape)
        self._inv_multiplicity = 1.0 / self.multiplicity
        self._inv_multiplicity_flat = np.ascontiguousarray(self._inv_multiplicity.reshape(-1))
        # Nodes with multiplicity 1 are element-interior; the shared set is
        # what a distributed implementation would communicate.
        self.n_shared = int(np.count_nonzero(mult > 1))
        # Traffic accounting (read by the observability layer): dssum call
        # count, bytes moved (gather + scatter) and accumulated wall time.
        # Plain scalar updates -- negligible next to the bincount itself.
        self.calls = 0
        self.bytes_moved = 0
        self.seconds = 0.0
        self.dot_calls = 0

    # -- core operations ---------------------------------------------------

    def add(self, u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Direct-stiffness summation: sum duplicated dofs, redistribute."""
        t0 = perf_counter()
        flat = u.reshape(-1)
        acc = np.bincount(self.global_ids, weights=flat, minlength=self.n_global)
        if out is None:
            out = np.empty_like(u)
        out.reshape(-1)[:] = acc[self.global_ids]
        self.calls += 1
        self.bytes_moved += 2 * u.nbytes
        self.seconds += perf_counter() - t0
        return out

    def min(self, u: np.ndarray) -> np.ndarray:
        """Minimum over duplicated dofs (used to combine boundary masks)."""
        acc = np.full(self.n_global, np.inf)
        np.minimum.at(acc, self.global_ids, u.reshape(-1))
        return acc[self.global_ids].reshape(u.shape)

    def max(self, u: np.ndarray) -> np.ndarray:
        """Maximum over duplicated dofs."""
        acc = np.full(self.n_global, -np.inf)
        np.maximum.at(acc, self.global_ids, u.reshape(-1))
        return acc[self.global_ids].reshape(u.shape)

    def average(self, u: np.ndarray) -> np.ndarray:
        """dssum followed by division by multiplicity (a projection onto C^0)."""
        return self.add(u) * self._inv_multiplicity

    # -- reductions over unique dofs ----------------------------------------

    def gather_unique(self, u: np.ndarray, reduce_duplicates: bool = False) -> np.ndarray:
        """Values per *unique* global dof.

        With ``reduce_duplicates`` the duplicated entries are summed (correct
        for additively-stored data such as residuals); otherwise the first
        occurrence is taken (correct for continuous fields).
        """
        flat = u.reshape(-1)
        if reduce_duplicates:
            return np.bincount(self.global_ids, weights=flat, minlength=self.n_global)
        out = np.empty(self.n_global)
        # Reversed so the *first* occurrence wins.
        out[self.global_ids[::-1]] = flat[::-1]
        return out

    def scatter_unique(self, ug: np.ndarray) -> np.ndarray:
        """Distribute per-unique-dof values back to the elementwise layout."""
        if ug.shape != (self.n_global,):
            raise ValueError(f"expected shape ({self.n_global},), got {ug.shape}")
        return ug[self.global_ids].reshape(self.shape)

    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        """Inner product counting every unique dof exactly once.

        The multiplicity division makes the duplicated elementwise storage
        consistent with a sum over unique dofs, which is what the distributed
        code computes with a local dot plus an allreduce.  (Integrals against
        the *unassembled* mass matrix, by contrast, are plain elementwise sums
        because each duplicate carries a partial quadrature contribution.)

        Computed as one pointwise scale plus a BLAS ``dot`` -- measurably
        faster than the naive ``sum(u * v * w)`` triple product on the
        Gram--Schmidt hot path (thousands of calls per step).
        """
        self.dot_calls += 1
        return float(np.dot((u * self._inv_multiplicity).reshape(-1), v.reshape(-1)))

    @property
    def inv_multiplicity(self) -> np.ndarray:
        """Pointwise ``1 / multiplicity`` -- the weight of :meth:`dot`.

        Exposed so Krylov solvers can pre-scale basis vectors once and run
        the Gram--Schmidt inner products as plain BLAS dots (the
        ``dot_weight`` fast path of :class:`repro.solvers.gmres.Gmres`).
        """
        return self._inv_multiplicity

    def reset_traffic(self) -> None:
        """Zero the traffic counters (between measurement windows)."""
        self.calls = 0
        self.bytes_moved = 0
        self.seconds = 0.0
        self.dot_calls = 0
