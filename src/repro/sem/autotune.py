"""Startup kernel autotuner: pick the fastest variant per ``(nelem, p)``.

The hot kernels of the solver come in interchangeable variants whose
relative speed depends on the problem shape and the BLAS build underneath:

* ``contraction`` -- batched-reshape ``matmul`` vs per-axis ``einsum``
  tensor contractions (:mod:`repro.sem.coef` / :mod:`repro.sem.operators`);
* ``smoother_dtype`` -- float32 vs float64 Schwarz/FDM local solves
  (:mod:`repro.precond.fdm`); the f32 pick is additionally protected at
  runtime by the :class:`~repro.precond.hsmg.IterationGuard`;
* ``operator_cache`` -- process-wide operator cache on vs off
  (:mod:`repro.precond.cache`).

:func:`autotune` benchmarks every variant on synthetic, deterministically
generated data of the target shape and records the winners into a
:class:`TuningTable` -- a JSON-round-trippable artifact a `Simulation`
consults at startup (and that CI uploads).  Selection is a pure argmin
with ties broken by declaration order, so the same measurements always
produce the same table; tests inject a fake ``clock`` to pin the
measurements themselves.

A stale table (an entry naming a variant this build no longer knows) must
never take the solver down: :func:`apply_tuning` validates every
selection against :data:`DIMENSIONS`, silently substitutes the default,
and reports the substitution as an ``autotune.fallback`` tracer event and
metric counter.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.precond.cache import CacheKey, OperatorCache
from repro.sem.coef import (
    _tensor_derivatives_axis,
    _tensor_derivatives_batched,
    set_contraction_variant,
)

__all__ = [
    "DIMENSIONS",
    "DEFAULTS",
    "TABLE_VERSION",
    "TuningEntry",
    "TuningTable",
    "autotune",
    "apply_tuning",
    "benchmark_contraction",
    "benchmark_smoother_dtype",
    "benchmark_operator_cache",
]

TABLE_VERSION = 1

#: Tunable dimensions and their known variants, in tie-break order (the
#: first variant wins ties, so defaults are listed first).
DIMENSIONS: dict[str, tuple[str, ...]] = {
    "contraction": ("batched", "axis"),
    "smoother_dtype": ("float64", "float32"),
    "operator_cache": ("on", "off"),
}

#: The safe selection used when a table entry is missing or unknown.
DEFAULTS: dict[str, str] = {
    "contraction": "batched",
    "smoother_dtype": "float64",
    "operator_cache": "on",
}

Clock = Callable[[], float]


# -- synthetic workloads -------------------------------------------------------


def _synthetic_field(nelem: int, n: int, dtype: Any = np.float64) -> np.ndarray:
    """Deterministic dense field of the target shape (no RNG needed)."""
    size = nelem * n * n * n
    vals = (np.arange(size, dtype=np.float64) % 7.0) / 7.0 + 0.25
    return vals.reshape(nelem, n, n, n).astype(dtype)


def _synthetic_matrix(n: int, dtype: Any = np.float64) -> np.ndarray:
    vals = (np.arange(n * n, dtype=np.float64) % 5.0) / 5.0
    return (vals.reshape(n, n) + np.eye(n)).astype(dtype)


def _time_call(fn: Callable[[], Any], repeats: int, clock: Clock) -> float:
    """Best-of-``repeats`` wall time of ``fn`` (min filters scheduler noise)."""
    best = np.inf
    for _ in range(repeats):
        t0 = clock()
        fn()
        elapsed = clock() - t0
        best = min(best, elapsed)
    return float(best)


# -- per-dimension benchmarks --------------------------------------------------


def benchmark_contraction(
    nelem: int, n: int, repeats: int = 3, clock: Clock = time.perf_counter
) -> dict[str, float]:
    """Seconds per tensor-derivative evaluation, per contraction variant."""
    u = _synthetic_field(nelem, n)
    d = _synthetic_matrix(n)
    return {
        "batched": _time_call(lambda: _tensor_derivatives_batched(u, d), repeats, clock),
        "axis": _time_call(lambda: _tensor_derivatives_axis(u, d), repeats, clock),
    }


def _fdm_proxy(u: np.ndarray, s: np.ndarray, st: np.ndarray, inv_d: np.ndarray) -> np.ndarray:
    """The FDM solve kernel shape: S^T-apply, pointwise scale, S-apply."""
    nelv, lz, ly, lx = u.shape
    v = u @ st.T
    v = np.matmul(st, v)
    v = np.matmul(st, v.reshape(nelv, lz, ly * lx)).reshape(u.shape)
    v = v * inv_d
    w = v @ s.T
    w = np.matmul(s, w)
    w = np.matmul(s, w.reshape(nelv, lz, ly * lx)).reshape(u.shape)
    return w


def benchmark_smoother_dtype(
    nelem: int, n: int, repeats: int = 3, clock: Clock = time.perf_counter
) -> dict[str, float]:
    """Seconds per FDM-shaped local solve in float64 vs float32.

    The float32 timing includes the down-cast of the residual and the
    up-cast of the correction, exactly as the mixed-precision smoother
    pays them per application.
    """
    u64 = _synthetic_field(nelem, n)
    s64 = _synthetic_matrix(n)
    st64 = np.ascontiguousarray(s64.T)
    inv64 = _synthetic_field(nelem, n)
    s32 = s64.astype(np.float32)
    st32 = st64.astype(np.float32)
    inv32 = inv64.astype(np.float32)

    def run64() -> None:
        _fdm_proxy(u64, s64, st64, inv64)

    def run32() -> None:
        u32 = u64.astype(np.float32)
        _fdm_proxy(u32, s32, st32, inv32).astype(np.float64)

    return {
        "float64": _time_call(run64, repeats, clock),
        "float32": _time_call(run32, repeats, clock),
    }


def benchmark_operator_cache(
    n: int = 24, repeats: int = 3, clock: Clock = time.perf_counter
) -> dict[str, float]:
    """Seconds per operator lookup with the cache on (warm) vs off (rebuild).

    The probe builder is a small symmetric eigendecomposition -- the same
    work class as the FDM setup -- so the measurement captures the real
    trade: a dict lookup against a dense factorization.
    """
    mat = _synthetic_matrix(n)
    sym = mat + mat.T

    def build() -> Any:
        return np.linalg.eigh(sym)

    key = CacheKey(mesh_hash="autotune-probe", p=n - 1, operator="eigh", dtype="float64")

    warm = OperatorCache(capacity=4)
    warm.get_or_build(key, build)  # prime
    on = _time_call(lambda: warm.get_or_build(key, build), repeats, clock)

    cold = OperatorCache(capacity=4, enabled=False)
    off = _time_call(lambda: cold.get_or_build(key, build), repeats, clock)
    return {"on": on, "off": off}


# -- tuning table --------------------------------------------------------------


@dataclass
class TuningEntry:
    """Winners (and raw measurements) for one ``(nelem, p)`` shape."""

    nelem: int
    p: int
    selections: dict[str, str]
    measurements: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "nelem": self.nelem,
            "p": self.p,
            "selections": dict(self.selections),
            "measurements": {k: dict(v) for k, v in self.measurements.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TuningEntry":
        return cls(
            nelem=int(data["nelem"]),
            p=int(data["p"]),
            selections={str(k): str(v) for k, v in data["selections"].items()},
            measurements={
                str(k): {str(vk): float(vv) for vk, vv in v.items()}
                for k, v in data.get("measurements", {}).items()
            },
        )


class TuningTable:
    """Reproducible ``(nelem, p) -> variant selection`` table (JSON artifact)."""

    def __init__(self, entries: list[TuningEntry] | None = None) -> None:
        self._entries: dict[tuple[int, int], TuningEntry] = {}
        for e in entries or []:
            self.add(e)

    def add(self, entry: TuningEntry) -> None:
        self._entries[(entry.nelem, entry.p)] = entry

    def lookup(self, nelem: int, p: int) -> TuningEntry | None:
        """Exact-shape lookup; ``None`` means autotune (or use defaults)."""
        return self._entries.get((int(nelem), int(p)))

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[TuningEntry]:
        return [self._entries[k] for k in sorted(self._entries)]

    def to_json(self) -> dict[str, Any]:
        return {
            "version": TABLE_VERSION,
            "entries": [e.to_dict() for e in self.entries()],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "TuningTable":
        version = int(data.get("version", 0))
        if version != TABLE_VERSION:
            raise ValueError(
                f"tuning table version {version} not supported (expected {TABLE_VERSION})"
            )
        return cls([TuningEntry.from_dict(d) for d in data.get("entries", [])])

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "TuningTable":
        return cls.from_json(json.loads(Path(path).read_text()))


# -- the autotuner -------------------------------------------------------------


def autotune(
    nelem: int,
    p: int,
    repeats: int = 3,
    clock: Clock = time.perf_counter,
    tracer: Any = None,
) -> TuningEntry:
    """Benchmark every variant for shape ``(nelem, p)`` and pick winners.

    Selection is ``argmin`` over the measured times with ties broken by
    the declaration order in :data:`DIMENSIONS` -- deterministic given the
    measurements, which an injected ``clock`` makes deterministic too.
    """
    n = p + 1
    measurements = {
        "contraction": benchmark_contraction(nelem, n, repeats, clock),
        "smoother_dtype": benchmark_smoother_dtype(nelem, n, repeats, clock),
        "operator_cache": benchmark_operator_cache(repeats=repeats, clock=clock),
    }
    selections = {
        dim: min(DIMENSIONS[dim], key=lambda v: measurements[dim][v])
        for dim in DIMENSIONS
    }
    if tracer is not None:
        tracer.event(
            "autotune.sweep", nelem=nelem, p=p, **{f"pick_{k}": v for k, v in selections.items()}
        )
    return TuningEntry(nelem=nelem, p=p, selections=selections, measurements=measurements)


def apply_tuning(
    selections: dict[str, str] | None,
    tracer: Any = None,
    metrics: Any = None,
) -> dict[str, str]:
    """Validate and install a selection set; unknown variants fall back.

    Returns the selections actually applied.  The ``contraction`` pick is
    installed process-wide here; ``smoother_dtype`` and ``operator_cache``
    are returned for the caller (`Simulation`) to thread into the
    preconditioner construction.  Every substitution of an unknown or
    missing variant by its default is logged as an ``autotune.fallback``
    event and counted on the ``autotune.fallback`` metric -- a stale table
    must be visible, never fatal.
    """
    selections = selections or {}
    applied: dict[str, str] = {}
    for dim, default in DEFAULTS.items():
        value = selections.get(dim, default)
        if value not in DIMENSIONS[dim]:
            if tracer is not None:
                tracer.event("autotune.fallback", dimension=dim, requested=value, used=default)
            if metrics is not None:
                metrics.counter("autotune.fallback").inc()
            value = default
        applied[dim] = value
    set_contraction_variant(applied["contraction"])
    if metrics is not None:
        for dim, value in applied.items():
            metrics.gauge(f"autotune.{dim}.variant_index").set(DIMENSIONS[dim].index(value))
    return applied
