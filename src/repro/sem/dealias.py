"""3/2-rule dealiasing (overintegration) of the convective term.

The quadratic nonlinearity ``(c . grad) u`` is evaluated on a finer GLL grid
with ``lxd = ceil(3 lx / 2)`` points per direction and projected back, which
removes the aliasing errors that destabilize marginally-resolved turbulence
-- exactly the treatment the paper reports ("dealiasing (overintegration)
according to the 3/2-rule").

The interpolation operators and the fine-grid metric factors are
precomputed once per space and reused every step; applying the operator is
three batched ``matmul`` sweeps per direction, the same tensor-contraction
structure as the coarse-grid kernels.
"""

from __future__ import annotations

import numpy as np

from repro.sem.basis import lagrange_interpolation_matrix
from repro.sem.coef import tensor_derivatives
from repro.sem.quadrature import gll_points_weights
from repro.sem.space import FunctionSpace

__all__ = ["Dealiaser", "interp3", "interp3_transpose"]


def interp3(u: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Apply a 1-D operator ``j`` along all three tensor directions.

    ``u`` has shape ``(nelv, m, m, m)`` and ``j`` shape ``(p, m)``; the
    result has shape ``(nelv, p, p, p)``.
    """
    nelv, m = u.shape[0], u.shape[-1]
    p = j.shape[0]
    v = u @ j.T                                        # i: (e, m, m, p)
    v = np.matmul(j, v)                                # j: (e, m, p, p)
    v = np.matmul(j, v.reshape(nelv, m, p * p)).reshape(nelv, p, p, p)  # k
    return v


def interp3_transpose(u: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Adjoint of :func:`interp3` (projection from the fine grid back)."""
    return interp3(u, j.T.copy())


class Dealiaser:
    """Dealiased convective operator for one function space.

    Parameters
    ----------
    space:
        The coarse (solution) function space.
    lxd:
        Number of fine-grid points per direction; defaults to the 3/2 rule.
    """

    def __init__(self, space: FunctionSpace, lxd: int | None = None) -> None:
        self.space = space
        lx = space.lx
        self.lxd = lxd if lxd is not None else (3 * lx + 1) // 2
        if self.lxd < lx:
            raise ValueError(f"fine grid lxd={self.lxd} must be >= lx={lx}")
        fine_pts, fine_w = gll_points_weights(self.lxd)
        self.interp = lagrange_interpolation_matrix(np.asarray(fine_pts), lx)

        coef = space.coef
        # Fine-grid inverse-map metrics and integration weights.  The
        # interpolation of the coarse-grid metrics is exact for affine
        # elements and spectrally accurate for the blended cylinder maps.
        self.drdx_d = interp3(coef.drdx, self.interp)
        self.drdy_d = interp3(coef.drdy, self.interp)
        self.drdz_d = interp3(coef.drdz, self.interp)
        self.dsdx_d = interp3(coef.dsdx, self.interp)
        self.dsdy_d = interp3(coef.dsdy, self.interp)
        self.dsdz_d = interp3(coef.dsdz, self.interp)
        self.dtdx_d = interp3(coef.dtdx, self.interp)
        self.dtdy_d = interp3(coef.dtdy, self.interp)
        self.dtdz_d = interp3(coef.dtdz, self.interp)
        jac_d = interp3(coef.jac, self.interp)
        w = np.asarray(fine_w)
        w3 = w[None, :, None, None] * w[None, None, :, None] * w[None, None, None, :]
        self.mass_d = w3 * jac_d

    def to_fine(self, u: np.ndarray) -> np.ndarray:
        """Interpolate a coarse nodal field to the fine grid."""
        return interp3(u, self.interp)

    def project_weak(self, u_fine: np.ndarray) -> np.ndarray:
        """Multiply by the fine mass and project back (weak-form data)."""
        return interp3_transpose(self.mass_d * u_fine, self.interp)

    def grad_fine(
        self, u: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Physical gradient of a coarse field, evaluated on the fine grid.

        Differentiates on the coarse grid (where the polynomial lives) and
        interpolates the reference-space derivatives, then applies the fine
        metrics -- the standard Nek/Neko ordering, which keeps the result
        exact for polynomial data.
        """
        ur, us, ut = tensor_derivatives(u, np.asarray(self.space.dx))
        urd = interp3(ur, self.interp)
        usd = interp3(us, self.interp)
        utd = interp3(ut, self.interp)
        dudx = urd * self.drdx_d + usd * self.dsdx_d + utd * self.dtdx_d
        dudy = urd * self.drdy_d + usd * self.dsdy_d + utd * self.dtdy_d
        dudz = urd * self.drdz_d + usd * self.dsdz_d + utd * self.dtdz_d
        return dudx, dudy, dudz

    def convect_weak(
        self,
        cx: np.ndarray,
        cy: np.ndarray,
        cz: np.ndarray,
        u: np.ndarray,
        c_fine: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Weak-form dealiased convection ``(v, (c . grad) u)``.

        ``c_fine`` may carry the convecting velocity already interpolated to
        the fine grid (it is reused across the three momentum components and
        the scalar each step -- the caller-side optimization Neko performs).
        """
        if c_fine is None:
            c_fine = (self.to_fine(cx), self.to_fine(cy), self.to_fine(cz))
        cxd, cyd, czd = c_fine
        dudx, dudy, dudz = self.grad_fine(u)
        adv = cxd * dudx
        adv += cyd * dudy
        adv += czd * dudz
        return self.project_weak(adv)
