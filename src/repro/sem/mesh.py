"""Hexahedral meshes for the spectral-element solver.

Two generators are provided, mirroring the production meshes of the paper:

* :func:`box_mesh` -- a tensor-product box, optionally periodic in any
  direction and optionally graded toward walls.  Used for canonical RBC
  between parallel plates and for all the convergence/verification tests.
* :func:`cylinder_mesh` -- a butterfly (O-grid) mesh of a cylindrical cell of
  height ``H = 1`` and given diameter, the geometry of the paper's RBC cell.
  The cross-section consists of a central square block surrounded by four
  blended blocks whose outermost edge is the exact circle; intermediate
  layers are linear blends between the square edge and the circle, the
  classic construction used for Neko/Nek5000 pipe and cylinder meshes.

A mesh is a *geometry provider*: it stores the eight corner vertices of each
element (used by the coarse space of the multigrid preconditioner) plus an
optional per-element curved map, and produces the (nelv, lx, lx, lx) arrays
of GLL node coordinates from which all metric factors are derived.  Element
connectivity is never stored explicitly -- the gather--scatter layer derives
it from coordinates, exactly as Neko derives it from the global numbering.

Index convention for all nodal arrays: ``[e, k, j, i]`` where ``i`` runs
along the local r direction (fastest), ``j`` along s, ``k`` along t.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.sem.quadrature import gll_points_weights

__all__ = ["HexMesh", "box_mesh", "cylinder_mesh", "graded_layers", "FACE_NORMAL_AXIS"]

# face ids 0..5 = r-, r+, s-, s+, t-, t+
FACE_NORMAL_AXIS = {0: "r", 1: "r", 2: "s", 3: "s", 4: "t", 5: "t"}

ElementMap = Callable[[np.ndarray, np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray, np.ndarray]]


@dataclass
class HexMesh:
    """An unstructured conforming hexahedral mesh.

    Attributes
    ----------
    corner_coords:
        ``(nelv, 2, 2, 2, 3)`` array of element corner vertices indexed
        ``[e, t, s, r, xyz]``.
    boundary_facets:
        Mapping from a boundary label (e.g. ``"bottom"``) to an integer
        array of shape ``(nfacets, 2)`` with rows ``(element, face_id)``.
    elem_maps:
        Optional per-element curved geometry maps; ``None`` entries fall
        back to trilinear interpolation of the corner vertices.
    periodic_image:
        Optional callable mapping node coordinates to canonical coordinates
        for the purpose of global numbering (implements periodicity).
    """

    corner_coords: np.ndarray
    boundary_facets: dict[str, np.ndarray] = field(default_factory=dict)
    elem_maps: list[ElementMap | None] | None = None
    periodic_image: Callable[[np.ndarray], np.ndarray] | None = None
    name: str = "hexmesh"

    def __post_init__(self) -> None:
        self.corner_coords = np.asarray(self.corner_coords, dtype=np.float64)
        if self.corner_coords.ndim != 5 or self.corner_coords.shape[1:] != (2, 2, 2, 3):
            raise ValueError(
                "corner_coords must have shape (nelv, 2, 2, 2, 3), got "
                f"{self.corner_coords.shape}"
            )
        self.boundary_facets = {
            k: np.asarray(v, dtype=np.int64).reshape(-1, 2)
            for k, v in self.boundary_facets.items()
        }

    @property
    def nelv(self) -> int:
        """Number of (local) elements."""
        return self.corner_coords.shape[0]

    def gll_coordinates(self, lx: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coordinates of the GLL nodes of every element.

        Returns three ``(nelv, lx, lx, lx)`` arrays ``(x, y, z)``.  Straight
        elements use the trilinear map of their corners; curved elements use
        their attached geometry map.
        """
        pts, _ = gll_points_weights(lx)
        r = pts[None, None, :]
        s = pts[None, :, None]
        t = pts[:, None, None]
        rr = np.broadcast_to(r, (lx, lx, lx))
        ss = np.broadcast_to(s, (lx, lx, lx))
        tt = np.broadcast_to(t, (lx, lx, lx))

        # Trilinear shape functions evaluated once; shape (2,2,2,lx,lx,lx).
        hr = np.stack([(1.0 - rr) / 2.0, (1.0 + rr) / 2.0])
        hs = np.stack([(1.0 - ss) / 2.0, (1.0 + ss) / 2.0])
        ht = np.stack([(1.0 - tt) / 2.0, (1.0 + tt) / 2.0])
        shape = np.einsum("aklm,bklm,cklm->cbaklm", hr, hs, ht)

        # corner_coords[e, t, s, r, d] contracted against shape[t, s, r, ...].
        coords = np.einsum("ecbad,cbaklm->edklm", self.corner_coords, shape)
        x, y, z = coords[:, 0], coords[:, 1], coords[:, 2]

        if self.elem_maps is not None:
            for e, emap in enumerate(self.elem_maps):
                if emap is None:
                    continue
                xe, ye, ze = emap(rr, ss, tt)
                x[e], y[e], z[e] = xe, ye, ze
        return x, y, z

    def facet_node_index(self, face_id: int, lx: int) -> tuple[slice | int, ...]:
        """Index tuple selecting the nodes of local face ``face_id``.

        The tuple applies to the trailing ``(k, j, i)`` axes of a field.
        """
        sl: list[slice | int] = [slice(None), slice(None), slice(None)]
        axis = {0: 2, 1: 2, 2: 1, 3: 1, 4: 0, 5: 0}[face_id]
        sl[axis] = 0 if face_id % 2 == 0 else lx - 1
        return tuple(sl)

    def boundary_labels(self) -> list[str]:
        """All boundary labels present on this mesh."""
        return sorted(self.boundary_facets.keys())

    def characteristic_size(self) -> float:
        """Mean element diagonal length -- a crude resolution indicator."""
        lo = self.corner_coords[:, 0, 0, 0]
        hi = self.corner_coords[:, 1, 1, 1]
        return float(np.mean(np.linalg.norm(hi - lo, axis=1)))


def graded_layers(n: int, lo: float, hi: float, beta: float = 0.0) -> np.ndarray:
    """``n + 1`` layer boundaries on ``[lo, hi]``.

    ``beta == 0`` gives a uniform distribution; ``beta > 0`` clusters points
    toward *both* ends with a tanh stretching of strength ``beta`` (values
    around 1.5-2.5 are typical for resolving RBC boundary layers).
    """
    if n < 1:
        raise ValueError("need at least one layer")
    xi = np.linspace(-1.0, 1.0, n + 1)
    if beta > 0.0:
        xi = np.tanh(beta * xi) / np.tanh(beta)
    return lo + (hi - lo) * (xi + 1.0) / 2.0


def _facets_to_array(facets: Sequence[tuple[int, int]]) -> np.ndarray:
    if len(facets) == 0:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(facets, dtype=np.int64)


def box_mesh(
    n: tuple[int, int, int],
    lengths: tuple[float, float, float] = (1.0, 1.0, 1.0),
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    periodic: tuple[bool, bool, bool] = (False, False, False),
    grading: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> HexMesh:
    """Tensor-product box mesh with ``n = (nx, ny, nz)`` elements.

    Boundary labels are ``x-, x+, y-, y+`` for the lateral walls and
    ``bottom`` / ``top`` for the ``z`` extremes (the RBC plates).  Periodic
    directions get a coordinate-wrapping ``periodic_image`` so the
    gather--scatter layer identifies opposite faces, and their boundary
    labels are omitted.
    """
    nx, ny, nz = n
    if min(nx, ny, nz) < 1:
        raise ValueError(f"box_mesh needs at least one element per direction, got {n}")
    lx_, ly_, lz_ = lengths
    ox, oy, oz = origin
    xs = graded_layers(nx, ox, ox + lx_, grading[0])
    ys = graded_layers(ny, oy, oy + ly_, grading[1])
    zs = graded_layers(nz, oz, oz + lz_, grading[2])

    nelv = nx * ny * nz
    corners = np.empty((nelv, 2, 2, 2, 3), dtype=np.float64)
    facets: dict[str, list[tuple[int, int]]] = {
        "x-": [], "x+": [], "y-": [], "y+": [], "bottom": [], "top": [],
    }
    e = 0
    for k in range(nz):
        for j in range(ny):
            for i in range(nx):
                for ct in range(2):
                    for cs in range(2):
                        for cr in range(2):
                            corners[e, ct, cs, cr] = (xs[i + cr], ys[j + cs], zs[k + ct])
                if i == 0:
                    facets["x-"].append((e, 0))
                if i == nx - 1:
                    facets["x+"].append((e, 1))
                if j == 0:
                    facets["y-"].append((e, 2))
                if j == ny - 1:
                    facets["y+"].append((e, 3))
                if k == 0:
                    facets["bottom"].append((e, 4))
                if k == nz - 1:
                    facets["top"].append((e, 5))
                e += 1

    drop = []
    if periodic[0]:
        drop += ["x-", "x+"]
    if periodic[1]:
        drop += ["y-", "y+"]
    if periodic[2]:
        drop += ["bottom", "top"]
    boundary = {
        lab: _facets_to_array(fs) for lab, fs in facets.items() if lab not in drop
    }

    periodic_image = None
    if any(periodic):
        spans = np.array([lx_, ly_, lz_])
        orig = np.array([ox, oy, oz])
        mask = np.array(periodic, dtype=bool)

        def periodic_image(coords: np.ndarray) -> np.ndarray:
            out = coords.copy()
            for d in range(3):
                if not mask[d]:
                    continue
                hi = orig[d] + spans[d]
                wrap = np.isclose(out[..., d], hi, rtol=0.0, atol=1e-10 * max(spans[d], 1.0))  # statcheck: ignore[backend-purity] -- mesh construction is setup-time
                out[..., d] = np.where(wrap, orig[d], out[..., d])  # statcheck: ignore[backend-purity] -- mesh construction is setup-time
            return out

    return HexMesh(
        corner_coords=corners,
        boundary_facets=boundary,
        periodic_image=periodic_image,
        name=f"box{nx}x{ny}x{nz}",
    )


def _butterfly_cross_section(
    radius: float,
    n_square: int,
    n_ring: int,
    square_fraction: float,
    ring_grading: float,
) -> tuple[list[Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]] | None], np.ndarray, list[bool]]:
    """Build the 2-D butterfly decomposition of a disc.

    Returns a list of per-quad 2-D geometry maps (``None`` = bilinear), the
    quad corner array ``(nquad, 2, 2, 2)`` indexed ``[q, s, r, xy]``, and a
    per-quad flag marking quads whose ``s+`` edge lies on the circle.
    """
    a = square_fraction * radius  # half-width of the central square
    u_sq = np.linspace(-1.0, 1.0, n_square + 1)

    quads_corners: list[np.ndarray] = []
    quad_maps: list[Callable | None] = []
    on_circle: list[bool] = []

    # Central square block: bilinear quads.
    for j in range(n_square):
        for i in range(n_square):
            c = np.empty((2, 2, 2))  # statcheck: ignore[backend-purity] -- mesh construction is setup-time
            for cs in range(2):
                for cr in range(2):
                    c[cs, cr] = (a * u_sq[i + cr], a * u_sq[j + cs])
            quads_corners.append(c)
            quad_maps.append(None)
            on_circle.append(False)

    # Radial blending fractions g_l in [0, 1]; g=1 is the exact circle.
    # Grading > 0 clusters layers toward the wall (resolving the sidewall BL).
    xi = np.linspace(0.0, 1.0, n_ring + 1)
    if ring_grading > 0.0:
        xi = np.tanh(ring_grading * xi) / np.tanh(ring_grading)
    g = xi

    # Four blocks, one per square side, rotated copies of the +x block.
    # Block b rotates the +x construction by b * 90 degrees.
    for b in range(4):
        ang = b * np.pi / 2.0
        ca, sa = np.cos(ang), np.sin(ang)  # statcheck: ignore[backend-purity] -- mesh construction is setup-time

        def square_edge(u: np.ndarray, ca: float = ca, sa: float = sa) -> tuple[np.ndarray, np.ndarray]:
            x0, y0 = a, a * u
            return ca * x0 - sa * y0, sa * x0 + ca * y0

        def circle_edge(u: np.ndarray, ca: float = ca, sa: float = sa) -> tuple[np.ndarray, np.ndarray]:
            th = u * np.pi / 4.0
            x0, y0 = radius * np.cos(th), radius * np.sin(th)  # statcheck: ignore[backend-purity] -- geometry closure evaluated at mesh build
            return ca * x0 - sa * y0, sa * x0 + ca * y0

        def layer_curve(u: np.ndarray, gl: float, ca: float = ca, sa: float = sa):
            xs, ys = square_edge(u, ca, sa)
            xc, yc = circle_edge(u, ca, sa)
            return (1.0 - gl) * xs + gl * xc, (1.0 - gl) * ys + gl * yc

        for ring in range(n_ring):
            g_in, g_out = g[ring], g[ring + 1]
            for i in range(n_square):
                # The azimuthal parameter runs *backwards* in r so that the
                # local (r, s) frame is right-handed (r x s = +z): s points
                # radially outward and u increases counter-clockwise.
                u0, u1 = u_sq[i + 1], u_sq[i]

                def qmap(
                    rr: np.ndarray,
                    ss: np.ndarray,
                    u0: float = u0,
                    u1: float = u1,
                    g_in: float = g_in,
                    g_out: float = g_out,
                    ca: float = ca,
                    sa: float = sa,
                ) -> tuple[np.ndarray, np.ndarray]:
                    u = u0 + (rr + 1.0) / 2.0 * (u1 - u0)
                    xi_, yi_ = layer_curve(u, g_in, ca, sa)
                    xo_, yo_ = layer_curve(u, g_out, ca, sa)
                    w = (ss + 1.0) / 2.0
                    return (1.0 - w) * xi_ + w * xo_, (1.0 - w) * yi_ + w * yo_

                c = np.empty((2, 2, 2))  # statcheck: ignore[backend-purity] -- mesh construction is setup-time
                for cs, gl in ((0, g_in), (1, g_out)):
                    for cr, uu in ((0, u0), (1, u1)):
                        xx, yy = layer_curve(np.asarray(uu), gl, ca, sa)  # statcheck: ignore[backend-purity] -- mesh construction is setup-time
                        c[cs, cr] = (float(xx), float(yy))
                quads_corners.append(c)
                quad_maps.append(qmap)
                on_circle.append(ring == n_ring - 1)

    return quad_maps, np.stack(quads_corners), on_circle


def cylinder_mesh(
    diameter: float = 0.5,
    height: float = 1.0,
    n_square: int = 2,
    n_ring: int = 2,
    n_z: int = 8,
    z_grading: float = 1.8,
    ring_grading: float = 0.0,
    square_fraction: float = 0.5,
) -> HexMesh:
    """Butterfly (O-grid) mesh of a cylinder of the given diameter and height.

    The cylinder axis is ``z`` in ``[0, height]``; ``diameter / height`` is
    the aspect ratio Gamma of the RBC cell (the paper's production case uses
    Gamma = 1/10; laptop-scale demos typically use Gamma = 1/2 or 1).
    ``z_grading`` clusters element layers toward the plates where the thermal
    boundary layers live.  Boundary labels: ``bottom``, ``top``, ``side``.
    """
    if diameter <= 0 or height <= 0:
        raise ValueError("diameter and height must be positive")
    radius = diameter / 2.0
    quad_maps, quad_corners, on_circle = _butterfly_cross_section(
        radius, n_square, n_ring, square_fraction, ring_grading
    )
    nquad = quad_corners.shape[0]
    zs = graded_layers(n_z, 0.0, height, z_grading)

    nelv = nquad * n_z
    corners = np.empty((nelv, 2, 2, 2, 3), dtype=np.float64)
    elem_maps: list[ElementMap | None] = [None] * nelv
    facets: dict[str, list[tuple[int, int]]] = {"bottom": [], "top": [], "side": []}

    e = 0
    for k in range(n_z):
        z0, z1 = zs[k], zs[k + 1]
        for q in range(nquad):
            for ct, zz in ((0, z0), (1, z1)):
                corners[e, ct, :, :, :2] = quad_corners[q]
                corners[e, ct, :, :, 2] = zz
            qmap = quad_maps[q]
            if qmap is not None:

                def emap(
                    rr: np.ndarray,
                    ss: np.ndarray,
                    tt: np.ndarray,
                    qmap: Callable = qmap,
                    z0: float = z0,
                    z1: float = z1,
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
                    xx, yy = qmap(rr, ss)
                    zz = z0 + (tt + 1.0) / 2.0 * (z1 - z0)
                    return (
                        np.broadcast_to(xx, rr.shape).copy(),  # statcheck: ignore[backend-purity] -- geometry closure evaluated at mesh build
                        np.broadcast_to(yy, rr.shape).copy(),  # statcheck: ignore[backend-purity] -- geometry closure evaluated at mesh build
                        np.broadcast_to(zz, rr.shape).copy(),  # statcheck: ignore[backend-purity] -- geometry closure evaluated at mesh build
                    )

                elem_maps[e] = emap
            if k == 0:
                facets["bottom"].append((e, 4))
            if k == n_z - 1:
                facets["top"].append((e, 5))
            if on_circle[q]:
                facets["side"].append((e, 3))
            e += 1

    return HexMesh(
        corner_coords=corners,
        boundary_facets={k: _facets_to_array(v) for k, v in facets.items()},
        elem_maps=elem_maps,
        name=f"cylinder_G{diameter / height:g}",
    )
