"""Geometric factors (metric terms) of a deformed spectral element.

For every element the map x(r) from the reference cube is differentiated on
the GLL grid to obtain the Jacobian matrix ``dx_i/dr_j``, its determinant,
its inverse ``dr_i/dx_j``, the diagonal mass matrix ``B = w3 |J|`` and the
six symmetric stiffness factors

    G_ab = w3 |J| (grad r_a . grad r_b),   a, b in {r, s, t},

which are what the matrix-free Laplacian kernel contracts against.  These
arrays are exactly the ``drdx``/``jac``/``B``/``G`` fields a spectral-element
code keeps resident on the device for the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Coefficients",
    "tensor_derivatives",
    "CONTRACTION_VARIANTS",
    "set_contraction_variant",
    "get_contraction_variant",
]

#: Interchangeable implementations of the tensor-contraction kernels.  The
#: startup autotuner (:mod:`repro.sem.autotune`) benchmarks both per
#: ``(nelem, p)`` and installs the winner; ``"batched"`` (batched BLAS
#: ``matmul`` over ``(nelem*n, n, n)`` reshapes) is the default.
CONTRACTION_VARIANTS: tuple[str, ...] = ("batched", "axis")

_contraction_variant = "batched"


def set_contraction_variant(name: str) -> None:
    """Install a contraction variant process-wide (autotuner hook)."""
    global _contraction_variant
    if name not in CONTRACTION_VARIANTS:
        raise ValueError(
            f"unknown contraction variant {name!r}; options: {CONTRACTION_VARIANTS}"
        )
    _contraction_variant = name


def get_contraction_variant() -> str:
    """The currently installed contraction variant."""
    return _contraction_variant


def _tensor_derivatives_batched(
    u: np.ndarray, dx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    nelv, lz, ly, lx = u.shape
    ur = u @ dx.T
    us = np.matmul(dx, u)
    ut = np.matmul(dx, u.reshape(nelv, lz, ly * lx)).reshape(u.shape)
    return ur, us, ut


def _tensor_derivatives_axis(
    u: np.ndarray, dx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    ur = np.einsum("il,ekjl->ekji", dx, u)
    us = np.einsum("jl,ekli->ekji", dx, u)
    ut = np.einsum("kl,elji->ekji", dx, u)
    return ur, us, ut


def tensor_derivatives_stacked(u: np.ndarray, dx: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Reference-space derivatives written into a stacked ``(3, *u.shape)`` buffer.

    Same contractions as the ``"batched"`` variant of
    :func:`tensor_derivatives` but with ``out=`` targets, so the result
    lands directly in the layout the fused geometric-factor contraction
    of ``ax_poisson``/``ax_helmholtz`` consumes -- no staging copies.
    """
    nelv, lz, ly, lx = u.shape
    np.matmul(u, dx.T, out=out[0])
    np.matmul(dx, u, out=out[1])
    np.matmul(dx, u.reshape(nelv, lz, ly * lx), out=out[2].reshape(nelv, lz, ly * lx))
    return out


def tensor_derivatives(u: np.ndarray, dx: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference-space derivatives ``(du/dr, du/ds, du/dt)`` of nodal data.

    ``u`` has shape ``(nelv, lx, lx, lx)`` indexed ``[e, k(t), j(s), i(r)]``
    and ``dx`` is the 1-D collocation derivative matrix.  The default
    ``"batched"`` variant runs all three directions as batched BLAS
    ``matmul`` calls (the guide's "vectorize the loops" rule); the
    ``"axis"`` variant is the per-axis ``einsum`` form kept as an
    autotuner alternative and equivalence oracle.
    """
    if _contraction_variant == "axis":
        return _tensor_derivatives_axis(u, dx)
    return _tensor_derivatives_batched(u, dx)


@dataclass
class Coefficients:
    """Metric terms of a mesh sampled on the GLL grid of a function space.

    All arrays have shape ``(nelv, lx, lx, lx)``.
    """

    # Forward map derivatives dx_i/dr_j.
    dxdr: np.ndarray
    dxds: np.ndarray
    dxdt: np.ndarray
    dydr: np.ndarray
    dyds: np.ndarray
    dydt: np.ndarray
    dzdr: np.ndarray
    dzds: np.ndarray
    dzdt: np.ndarray
    # Inverse map derivatives dr_i/dx_j.
    drdx: np.ndarray
    drdy: np.ndarray
    drdz: np.ndarray
    dsdx: np.ndarray
    dsdy: np.ndarray
    dsdz: np.ndarray
    dtdx: np.ndarray
    dtdy: np.ndarray
    dtdz: np.ndarray
    jac: np.ndarray
    mass: np.ndarray  # B = w3 * |J|
    g11: np.ndarray
    g22: np.ndarray
    g33: np.ndarray
    g12: np.ndarray
    g13: np.ndarray
    g23: np.ndarray
    volume: float
    # Lazily built stacked view of the symmetric G tensor (see g_stack()).
    _g_stack: np.ndarray | None = None

    def g_stack(self) -> np.ndarray:
        """Symmetric geometric factors as one ``(3, 3, npts)`` array.

        Feeds the fused ``einsum("abn,bn->an", ...)`` contraction in
        ``ax_poisson``/``ax_helmholtz``: one C pass over nine components
        instead of fifteen separate multiply/add sweeps.  Built on first
        use and reused for the lifetime of the coefficients (the G tensor
        is immutable after construction).
        """
        if self._g_stack is None:
            n = self.g11.size
            g = np.empty((3, 3, n))
            g[0, 0] = self.g11.reshape(-1)
            g[0, 1] = self.g12.reshape(-1)
            g[0, 2] = self.g13.reshape(-1)
            g[1, 0] = self.g12.reshape(-1)
            g[1, 1] = self.g22.reshape(-1)
            g[1, 2] = self.g23.reshape(-1)
            g[2, 0] = self.g13.reshape(-1)
            g[2, 1] = self.g23.reshape(-1)
            g[2, 2] = self.g33.reshape(-1)
            self._g_stack = g
        return self._g_stack

    @classmethod
    def build(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
        weights: np.ndarray,
        dx: np.ndarray,
    ) -> "Coefficients":
        """Compute all factors from nodal coordinates.

        Parameters
        ----------
        x, y, z:
            ``(nelv, lx, lx, lx)`` GLL node coordinates.
        weights:
            1-D GLL quadrature weights of length ``lx``.
        dx:
            ``(lx, lx)`` collocation derivative matrix.
        """
        dxdr, dxds, dxdt = tensor_derivatives(x, dx)
        dydr, dyds, dydt = tensor_derivatives(y, dx)
        dzdr, dzds, dzdt = tensor_derivatives(z, dx)

        jac = (
            dxdr * (dyds * dzdt - dydt * dzds)
            - dxds * (dydr * dzdt - dydt * dzdr)
            + dxdt * (dydr * dzds - dyds * dzdr)
        )
        if np.any(jac <= 0.0):
            bad = int(np.count_nonzero(np.min(jac.reshape(jac.shape[0], -1), axis=1) <= 0.0))
            raise ValueError(
                f"mesh has {bad} element(s) with non-positive Jacobian "
                "(inverted or degenerate geometry)"
            )

        inv = 1.0 / jac
        drdx = (dyds * dzdt - dydt * dzds) * inv
        drdy = (dxdt * dzds - dxds * dzdt) * inv
        drdz = (dxds * dydt - dxdt * dyds) * inv
        dsdx = (dydt * dzdr - dydr * dzdt) * inv
        dsdy = (dxdr * dzdt - dxdt * dzdr) * inv
        dsdz = (dxdt * dydr - dxdr * dydt) * inv
        dtdx = (dydr * dzds - dyds * dzdr) * inv
        dtdy = (dxds * dzdr - dxdr * dzds) * inv
        dtdz = (dxdr * dyds - dxds * dydr) * inv

        w3 = weights[None, :, None, None] * weights[None, None, :, None] * weights[None, None, None, :]
        mass = w3 * jac
        wj = w3 * jac

        g11 = wj * (drdx**2 + drdy**2 + drdz**2)
        g22 = wj * (dsdx**2 + dsdy**2 + dsdz**2)
        g33 = wj * (dtdx**2 + dtdy**2 + dtdz**2)
        g12 = wj * (drdx * dsdx + drdy * dsdy + drdz * dsdz)
        g13 = wj * (drdx * dtdx + drdy * dtdy + drdz * dtdz)
        g23 = wj * (dsdx * dtdx + dsdy * dtdy + dsdz * dtdz)

        return cls(
            dxdr=dxdr, dxds=dxds, dxdt=dxdt,
            dydr=dydr, dyds=dyds, dydt=dydt,
            dzdr=dzdr, dzds=dzds, dzdt=dzdt,
            drdx=drdx, drdy=drdy, drdz=drdz,
            dsdx=dsdx, dsdy=dsdy, dsdz=dsdz,
            dtdx=dtdx, dtdy=dtdy, dtdz=dtdz,
            jac=jac, mass=mass,
            g11=g11, g22=g22, g33=g33, g12=g12, g13=g13, g23=g23,
            volume=float(np.sum(mass)),
        )
