"""Modal low-pass filtering (stabilization).

Nek5000/Neko optionally damp the highest Legendre modes each step to
stabilize marginally resolved runs.  Implemented as the classic transfer
function applied in modal space: modes below a cutoff pass untouched, the
top modes are attenuated smoothly (quadratic ramp to ``1 - strength``),
applied with one nodal->modal->nodal tensor round trip per field.
"""

from __future__ import annotations

import numpy as np

from repro.sem.basis import vandermonde_pair as _vandermonde_pair
from repro.sem.dealias import interp3

__all__ = ["ModalFilter"]


class ModalFilter:
    """Low-pass modal filter for ``(nelv, lx, lx, lx)`` fields.

    Parameters
    ----------
    lx:
        Points per direction of the target fields.
    cutoff:
        First 1-D mode index that gets attenuated (modes ``0..cutoff-1``
        pass unchanged).
    strength:
        Attenuation of the very highest mode (``0 <= strength <= 1``;
        Nek's default "filter weight" is 0.05).
    """

    def __init__(self, lx: int, cutoff: int | None = None, strength: float = 0.05) -> None:
        if not 0.0 <= strength <= 1.0:
            raise ValueError("strength must be in [0, 1]")
        if cutoff is None:
            cutoff = max(1, lx - 2)
        if not 1 <= cutoff <= lx:
            raise ValueError(f"cutoff must be in [1, {lx}]")
        self.lx = lx
        self.cutoff = cutoff
        self.strength = strength

        sigma = np.ones(lx)
        for m in range(cutoff, lx):
            t = (m - cutoff + 1) / (lx - cutoff)
            sigma[m] = 1.0 - strength * t**2
        self.sigma = sigma

        v, vinv = _vandermonde_pair(lx)
        # One fused matrix per direction: F = V diag(sigma) V^{-1}.
        self.matrix = np.asarray(v) @ np.diag(sigma) @ np.asarray(vinv)

    def __call__(self, u: np.ndarray) -> np.ndarray:
        """Filtered copy of ``u``."""
        if u.shape[-1] != self.lx:
            raise ValueError(f"field lx {u.shape[-1]} != filter lx {self.lx}")
        return interp3(u, self.matrix)

    def transfer_function(self) -> np.ndarray:
        """Per-mode 1-D attenuation factors (for inspection/plotting)."""
        return self.sigma.copy()
