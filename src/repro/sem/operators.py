"""Matrix-free tensor-product operators.

These are the compute kernels of the solver -- the Python analogues of
Neko's ``ax_helm``, ``opgrad``, ``cdtp`` and friends.  Everything is
formulated per element on the ``(nelv, lx, lx, lx)`` layout and contracted
with batched ``matmul`` so the work runs inside BLAS.  None of these
routines performs gather--scatter or boundary masking; that is the caller's
job (exactly as in the real code, where the ``Ax`` object computes the local
action and the Krylov solver owns assembly).
"""

from __future__ import annotations

import numpy as np

from repro.sem.coef import (
    Coefficients,
    get_contraction_variant,
    tensor_derivatives,
    tensor_derivatives_stacked,
)
from repro.statcheck.contracts import FIELD, OPERATOR_1D, contract

__all__ = [
    "local_grad",
    "local_grad_transpose",
    "physical_grad",
    "ax_poisson",
    "ax_helmholtz",
    "weak_divergence",
    "weak_gradient",
    "weak_gradient_transpose",
    "divergence",
    "curl",
    "convective_term_collocated",
]


def local_grad(u: np.ndarray, dx: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference-space derivatives ``(u_r, u_s, u_t)``."""
    return tensor_derivatives(u, dx)


def local_grad_transpose(
    wr: np.ndarray, ws: np.ndarray, wt: np.ndarray, dx: np.ndarray
) -> np.ndarray:
    """Adjoint of :func:`local_grad`: ``D_r^T wr + D_s^T ws + D_t^T wt``.

    Dispatches on the same autotuner-selected contraction variant as
    :func:`~repro.sem.coef.tensor_derivatives`.
    """
    if get_contraction_variant() == "axis":
        out = np.einsum("ekjl,li->ekji", wr, dx)
        out += np.einsum("lj,ekli->ekji", dx, ws)
        out += np.einsum("lk,elji->ekji", dx, wt)
        return out
    nelv, lz, ly, lx = wr.shape
    out = wr @ dx
    out += np.matmul(dx.T, ws)
    out += np.matmul(dx.T, wt.reshape(nelv, lz, ly * lx)).reshape(wr.shape)
    return out


def physical_grad(
    u: np.ndarray, coef: Coefficients, dx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pointwise physical gradient ``(du/dx, du/dy, du/dz)``."""
    ur, us, ut = tensor_derivatives(u, dx)
    dudx = ur * coef.drdx + us * coef.dsdx + ut * coef.dtdx
    dudy = ur * coef.drdy + us * coef.dsdy + ut * coef.dtdy
    dudz = ur * coef.drdz + us * coef.dsdz + ut * coef.dtdz
    return dudx, dudy, dudz


@contract(u=FIELD, dx=OPERATOR_1D, returns=FIELD)
def ax_poisson(u: np.ndarray, coef: Coefficients, dx: np.ndarray) -> np.ndarray:
    """Local action of the stiffness matrix: ``w = A u`` (unassembled).

    The weak Laplacian ``(grad v, grad u)`` evaluated with the geometric
    factors ``G``: differentiate, contract with ``G``, apply the transposed
    derivatives.  ~`6 lx` flops per point over `7` resident arrays -- the
    bandwidth-bound profile the roofline model in ``repro.perfmodel``
    assumes.
    """
    # The batched fast path needs the stacked geometric factors; duck-typed
    # coef stand-ins (e.g. per-rank chunks in the distributed layer) that
    # only carry g11..g33 take the per-axis form regardless of the variant.
    g_stack = getattr(coef, "g_stack", None)
    if get_contraction_variant() == "axis" or g_stack is None:
        ur, us, ut = tensor_derivatives(u, dx)
        wr = coef.g11 * ur + coef.g12 * us + coef.g13 * ut
        ws = coef.g12 * ur + coef.g22 * us + coef.g23 * ut
        wt = coef.g13 * ur + coef.g23 * us + coef.g33 * ut
        return local_grad_transpose(wr, ws, wt, dx)
    # Batched fast path: derivatives land in a stacked buffer and the G
    # contraction runs as a single fused einsum pass.
    du = np.empty((3,) + u.shape)
    tensor_derivatives_stacked(u, dx, du)
    w = np.einsum("abn,bn->an", g_stack(), du.reshape(3, u.size))
    wv = w.reshape(du.shape)
    return local_grad_transpose(wv[0], wv[1], wv[2], dx)


@contract(u=FIELD, dx=OPERATOR_1D, returns=FIELD)
def ax_helmholtz(
    u: np.ndarray,
    coef: Coefficients,
    dx: np.ndarray,
    h1: float | np.ndarray,
    h2: float | np.ndarray,
) -> np.ndarray:
    """Local action of the Helmholtz operator ``h1 * A + h2 * B``.

    ``h1`` is the diffusivity, ``h2`` the reaction/mass coefficient (the
    BDF ``b0 / dt`` factor in the time-stepper); both may vary pointwise.
    """
    g_stack = getattr(coef, "g_stack", None)
    if get_contraction_variant() == "axis" or g_stack is None:
        ur, us, ut = tensor_derivatives(u, dx)
        wr = h1 * (coef.g11 * ur + coef.g12 * us + coef.g13 * ut)
        ws = h1 * (coef.g12 * ur + coef.g22 * us + coef.g23 * ut)
        wt = h1 * (coef.g13 * ur + coef.g23 * us + coef.g33 * ut)
        out = local_grad_transpose(wr, ws, wt, dx)
        out += h2 * coef.mass * u
        return out
    du = np.empty((3,) + u.shape)
    tensor_derivatives_stacked(u, dx, du)
    w = np.einsum("abn,bn->an", g_stack(), du.reshape(3, u.size))
    wv = w.reshape(du.shape)
    wv *= h1  # scalar or pointwise (nelv, lx, lx, lx): broadcasts over rows
    out = local_grad_transpose(wv[0], wv[1], wv[2], dx)
    out += h2 * coef.mass * u
    return out


def divergence(
    ux: np.ndarray, uy: np.ndarray, uz: np.ndarray, coef: Coefficients, dx: np.ndarray
) -> np.ndarray:
    """Pointwise (strong) divergence of a vector field."""
    dxx, _, _ = physical_grad(ux, coef, dx)
    _, dyy, _ = physical_grad(uy, coef, dx)
    _, _, dzz = physical_grad(uz, coef, dx)
    return dxx + dyy + dzz


def weak_divergence(
    ux: np.ndarray, uy: np.ndarray, uz: np.ndarray, coef: Coefficients, dx: np.ndarray
) -> np.ndarray:
    """Weak divergence ``(v, div u)``: the mass-weighted strong divergence.

    With GLL collocation the weak form reduces to ``B * div(u)``; this is the
    quantity that feeds the pressure-Poisson right-hand side.
    """
    return coef.mass * divergence(ux, uy, uz, coef, dx)


def weak_gradient(
    p: np.ndarray, coef: Coefficients, dx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Weak gradient ``(v, grad p)`` componentwise (mass-weighted)."""
    px, py, pz = physical_grad(p, coef, dx)
    return coef.mass * px, coef.mass * py, coef.mass * pz


def weak_gradient_transpose(
    vx: np.ndarray,
    vy: np.ndarray,
    vz: np.ndarray,
    coef: Coefficients,
    dx: np.ndarray,
) -> np.ndarray:
    """``(grad phi, v)`` -- the integrated-by-parts weak divergence.

    This is Nek's ``cdtp``: the adjoint of the weak gradient.  For a vector
    field with zero normal component on the boundary (no-slip, symmetry or
    periodic), ``(phi, div v) = -(grad phi, v)``, and using this form for
    the pressure right-hand side builds the boundary condition into the
    discretization instead of differentiating across the wall.
    """
    b = coef.mass
    wr = b * (coef.drdx * vx + coef.drdy * vy + coef.drdz * vz)
    ws = b * (coef.dsdx * vx + coef.dsdy * vy + coef.dsdz * vz)
    wt = b * (coef.dtdx * vx + coef.dtdy * vy + coef.dtdz * vz)
    return local_grad_transpose(wr, ws, wt, dx)


def curl(
    ux: np.ndarray, uy: np.ndarray, uz: np.ndarray, coef: Coefficients, dx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pointwise curl of a vector field (vorticity when applied to velocity)."""
    _, duxdy, duxdz = physical_grad(ux, coef, dx)
    duydx, _, duydz = physical_grad(uy, coef, dx)
    duzdx, duzdy, _ = physical_grad(uz, coef, dx)
    wx = duzdy - duydz
    wy = duxdz - duzdx
    wz = duydx - duxdy
    return wx, wy, wz


def convective_term_collocated(
    cx: np.ndarray,
    cy: np.ndarray,
    cz: np.ndarray,
    u: np.ndarray,
    coef: Coefficients,
    dx: np.ndarray,
) -> np.ndarray:
    """Pointwise ``(c . grad) u`` *without* dealiasing.

    Kept for verification against the dealiased operator (both must agree
    when the fields are well resolved) and for the cheap low-Ra tests.
    """
    dudx, dudy, dudz = physical_grad(u, coef, dx)
    return cx * dudx + cy * dudy + cz * dudz
