"""A process-local metrics registry: counters, gauges, histograms.

Spans answer "where did the time go inside one run"; metrics answer "how
much of everything happened" -- solver iterations, gather--scatter bytes,
in-situ queue depths, resilience retries.  The registry is the single
place all of it accumulates, snapshotable to a plain dict for JSON export
and renderable as a text report.

Everything is deliberately simple and allocation-light: a metric is a
small mutable object looked up once (``registry.counter("gs.calls")``)
and then updated with plain float arithmetic, cheap enough to leave on in
production runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """Monotonically increasing count (calls, bytes, retries)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-value metric with running extrema (queue depth, dt, residual)."""

    name: str
    value: float = math.nan
    min: float = math.inf
    max: float = -math.inf
    updates: int = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.updates += 1

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "min": self.min if self.updates else math.nan,
            "max": self.max if self.updates else math.nan,
            "updates": self.updates,
        }


@dataclass
class Histogram:
    """Streaming distribution summary (solver iterations, span durations).

    Keeps exact count/sum/min/max plus a bounded reservoir of the most
    recent ``keep`` observations for percentile estimates -- enough for
    regression dashboards without unbounded memory.
    """

    name: str
    keep: int = 1024
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    recent: list[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.recent.append(value)
        if len(self.recent) > self.keep:
            del self.recent[: len(self.recent) - self.keep]

    @property
    def mean(self) -> float:
        """Mean of all observations; NaN for an empty histogram."""
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the retained reservoir.

        An empty histogram yields NaN (matching :attr:`mean`, so dashboards
        render a gap rather than crash); a ``q`` outside [0, 1] raises --
        that is a caller bug, not missing data.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.recent:
            return math.nan
        data = sorted(self.recent)
        idx = min(len(data) - 1, max(0, int(round(q * (len(data) - 1)))))
        return data[idx]

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


class MetricsRegistry:
    """Named metric store; metrics are created on first access.

    Names are dotted paths (``solver.pressure.iterations``); the snapshot
    keeps them flat, which diffing and JSON tooling prefer.  Asking for an
    existing name with a different metric kind raises -- silent type
    punning is how dashboards rot.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, **kwargs):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name=name, **kwargs)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(m).__name__}, "
                f"requested {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, keep: int = 1024) -> Histogram:
        return self._get(name, Histogram, keep=keep)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """Flat ``{name: summary dict}`` snapshot, JSON-serializable."""
        return {k: m.snapshot() for k, m in sorted(self._metrics.items())}

    def report(self) -> str:
        """Human-readable one-line-per-metric report."""
        lines = []
        for name, m in sorted(self._metrics.items()):
            if isinstance(m, Counter):
                lines.append(f"{name:<40s} counter {m.value:g}")
            elif isinstance(m, Gauge):
                lines.append(
                    f"{name:<40s} gauge   {m.value:g} (min {m.min:g}, max {m.max:g})"
                )
            else:
                lines.append(
                    f"{name:<40s} hist    n={m.count} mean={m.mean:g} "
                    f"min={m.min:g} max={m.max:g}"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        self._metrics.clear()
