"""Exporters for the trace/metrics record.

Three formats, mirroring how the paper's measurements are consumed:

* **Chrome trace JSON** -- loads directly into ``chrome://tracing`` (or
  Perfetto) and renders the nested spans as the familiar flame chart, the
  reproduction of the Fig. 2 style kernel trace.
* **JSONL** -- one span per line, the machine-readable stream for ad-hoc
  analysis (pandas, jq).
* **Text report** -- an aggregated tree with totals, counts and share of
  parent time, the Fig. 4 style per-phase breakdown.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracer import Span, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "span_records",
    "write_jsonl",
    "text_report",
]


def _args(span: "Span") -> dict:
    args = {}
    if span.tags:
        args.update({str(k): v for k, v in span.tags.items()})
    if span.counters:
        args.update({str(k): v for k, v in span.counters.items()})
    return args


def to_chrome_trace(
    tracer: "Tracer",
    metrics: "MetricsRegistry | None" = None,
    pid: int = 0,
    tid: int = 0,
    process_name: str = "repro",
) -> dict:
    """Build a Chrome-trace ``dict`` (``chrome://tracing``-loadable).

    Spans become ``"X"`` (complete) events with microsecond timestamps;
    instant events become ``"i"`` events.  A metrics snapshot, when given,
    is attached as trace ``metadata`` (visible in the viewer's metadata
    pane) so one file carries the whole record.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        }
    ]
    for span in tracer.walk():
        if span.end is None:
            continue  # still open; an exported half-span would render as garbage
        base = {
            "name": span.name,
            "cat": str(span.tags.get("cat", "sim")),
            "pid": pid,
            "tid": tid,
            "ts": span.start * 1e6,
        }
        if span.instant:
            events.append({**base, "ph": "i", "s": "t", "args": _args(span)})
        else:
            events.append(
                {**base, "ph": "X", "dur": span.duration * 1e6, "args": _args(span)}
            )
    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        trace["metadata"] = {"metrics": metrics.snapshot()}
    return trace


def write_chrome_trace(
    path, tracer: "Tracer", metrics: "MetricsRegistry | None" = None, **kwargs
) -> None:
    """Serialize :func:`to_chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer, metrics, **kwargs), fh)


def span_records(tracer: "Tracer"):
    """Flat span dicts (one per finished span), depth-first order."""
    for span in tracer.walk():
        if span.end is None:
            continue
        yield {
            "name": span.name,
            "start": span.start,
            "duration": span.duration,
            "depth": span.depth,
            "parent": span.parent.name if span.parent is not None else None,
            "instant": span.instant,
            "tags": dict(span.tags),
            "counters": dict(span.counters),
        }


def write_jsonl(path, tracer: "Tracer") -> None:
    """One JSON object per finished span, one per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for rec in span_records(tracer):
            fh.write(json.dumps(rec) + "\n")


def text_report(tracer: "Tracer", metrics: "MetricsRegistry | None" = None) -> str:
    """Aggregated per-path breakdown (the Fig. 4 quantity, as text).

    Spans are grouped by their slash-joined path; each line shows total
    seconds, call count and the share of the parent path's total.
    """
    agg = tracer.aggregate()
    lines = ["== trace breakdown =="]
    if not agg:
        lines.append("(no spans recorded)")
    for path in sorted(agg):
        total, count = agg[path]
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        parent = path.rsplit("/", 1)[0] if depth else None
        share = ""
        if parent is not None and agg.get(parent, (0.0, 0))[0] > 0:
            share = f"  {100.0 * total / agg[parent][0]:5.1f}% of {parent.rsplit('/', 1)[-1]}"
        lines.append(f"{'  ' * depth}{name:<24s} {total:10.4f} s  ({count} calls){share}")
    if metrics is not None and len(metrics):
        lines += ["", "== metrics ==", metrics.report()]
    return "\n".join(lines)
