"""Exporters for the trace/metrics record.

Three formats, mirroring how the paper's measurements are consumed:

* **Chrome trace JSON** -- loads directly into ``chrome://tracing`` (or
  Perfetto) and renders the nested spans as the familiar flame chart, the
  reproduction of the Fig. 2 style kernel trace.  Counter samples
  (``Tracer.sample``) and metric final values become ``"C"`` counter
  events, so queue depth, CFL and anomaly signals render as lanes under
  the spans instead of hiding in metadata.
* **JSONL** -- one span per line, the machine-readable stream for ad-hoc
  analysis (pandas, jq).
* **Text report** -- an aggregated tree with totals, counts and share of
  parent time, the Fig. 4 style per-phase breakdown.

All writers serialize through :mod:`repro.observability.jsonio`, so a
non-finite gauge (NaN residual, empty-histogram mean) produces strict
JSON (``null`` / ``"Infinity"``) instead of an invalid literal.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.observability.jsonio import dump_line, dumps, sanitize

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracer import Span, Tracer

__all__ = [
    "to_chrome_trace",
    "metric_counter_events",
    "write_chrome_trace",
    "span_records",
    "write_jsonl",
    "text_report",
]


def _args(span: "Span") -> dict:
    args = {}
    if span.tags:
        args.update({str(k): v for k, v in span.tags.items()})
    if span.counters:
        args.update({str(k): v for k, v in span.counters.items()})
    return args


def metric_counter_events(
    metrics: "MetricsRegistry", pid: int = 0, tid: int = 0, ts_us: float = 0.0
) -> list[dict]:
    """Chrome-trace counter (``"C"``) events for a registry's final values.

    Gauges become one counter sample named after the metric (``value``
    series); histograms expose their ``mean``/``p95``.  Non-finite values
    are skipped -- a NaN lane renders as garbage and ``Infinity`` is not
    JSON -- they remain visible, sanitized, in the trace ``metadata``.
    """
    events: list[dict] = []
    for name, snap in metrics.snapshot().items():
        base = {"name": name, "ph": "C", "cat": "metric", "pid": pid, "tid": tid, "ts": ts_us}
        if snap.get("type") == "gauge":
            if math.isfinite(snap["value"]):
                events.append({**base, "args": {"value": snap["value"]}})
        elif snap.get("type") == "histogram":
            series = {
                k: snap[k] for k in ("mean", "p95") if math.isfinite(snap.get(k, math.nan))
            }
            if series:
                events.append({**base, "args": series})
    return events


def to_chrome_trace(
    tracer: "Tracer",
    metrics: "MetricsRegistry | None" = None,
    pid: int = 0,
    tid: int = 0,
    process_name: str = "repro",
) -> dict:
    """Build a Chrome-trace ``dict`` (``chrome://tracing``-loadable).

    Spans become ``"X"`` (complete) events with microsecond timestamps;
    instant events become ``"i"`` events; counter samples
    (:meth:`~repro.observability.tracer.Tracer.sample`) become ``"C"``
    events that render as metric lanes.  A metrics snapshot, when given,
    contributes final-value ``"C"`` lanes placed at the end of the
    timeline *and* rides along as trace ``metadata`` so one file carries
    the whole record.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        }
    ]
    end_ts = 0.0
    for span in tracer.walk():
        if span.end is None:
            continue  # still open; an exported half-span would render as garbage
        end_ts = max(end_ts, span.end * 1e6)
        base = {
            "name": span.name,
            "cat": str(span.tags.get("cat", "sim")),
            "pid": pid,
            "tid": tid,
            "ts": span.start * 1e6,
        }
        if span.sample:
            value = span.counters.get("value", 0.0)
            if math.isfinite(value):
                events.append({**base, "ph": "C", "args": {"value": value}})
        elif span.instant:
            events.append({**base, "ph": "i", "s": "t", "args": _args(span)})
        else:
            events.append(
                {**base, "ph": "X", "dur": span.duration * 1e6, "args": _args(span)}
            )
    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        events.extend(metric_counter_events(metrics, pid=pid, tid=tid, ts_us=end_ts))
        trace["metadata"] = {"metrics": metrics.snapshot()}
    return trace


def write_chrome_trace(
    path, tracer: "Tracer", metrics: "MetricsRegistry | None" = None, **kwargs
) -> None:
    """Serialize :func:`to_chrome_trace` to ``path`` (strict JSON)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(to_chrome_trace(tracer, metrics, **kwargs)))


def span_records(tracer: "Tracer"):
    """Flat span dicts (one per finished span), depth-first order."""
    for span in tracer.walk():
        if span.end is None:
            continue
        yield {
            "name": span.name,
            "start": span.start,
            "duration": span.duration,
            "depth": span.depth,
            "parent": span.parent.name if span.parent is not None else None,
            "instant": span.instant,
            "sample": span.sample,
            "tags": sanitize(dict(span.tags)),
            "counters": sanitize(dict(span.counters)),
        }


def write_jsonl(path, tracer: "Tracer") -> None:
    """One JSON object per finished span, one per line (strict JSON)."""
    with open(path, "w", encoding="utf-8") as fh:
        for rec in span_records(tracer):
            fh.write(dump_line(rec))


def text_report(tracer: "Tracer", metrics: "MetricsRegistry | None" = None) -> str:
    """Aggregated per-path breakdown (the Fig. 4 quantity, as text).

    Spans are grouped by their slash-joined path; each line shows total
    seconds, call count and the share of the parent path's total.
    """
    agg = tracer.aggregate()
    lines = ["== trace breakdown =="]
    if not agg:
        lines.append("(no spans recorded)")
    for path in sorted(agg):
        total, count = agg[path]
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        parent = path.rsplit("/", 1)[0] if depth else None
        share = ""
        if parent is not None and agg.get(parent, (0.0, 0))[0] > 0:
            share = f"  {100.0 * total / agg[parent][0]:5.1f}% of {parent.rsplit('/', 1)[-1]}"
        lines.append(f"{'  ' * depth}{name:<24s} {total:10.4f} s  ({count} calls){share}")
    if metrics is not None and len(metrics):
        lines += ["", "== metrics ==", metrics.report()]
    return "\n".join(lines)
