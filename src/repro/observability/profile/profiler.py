"""The continuous profiler: per-step roofline attribution, online.

:class:`ContinuousProfiler` rides the measurements the solver already
makes -- the per-region wall times of
:class:`~repro.core.timers.RegionTimers` and the gather--scatter traffic
counters -- and, every step, compares them against what
:class:`~repro.perfmodel.workmodel.SEMWorkModel` predicts for that step's
*actual* iteration counts on the configured machine.  That is the paper's
measured-vs-modeled methodology (Sec. 5) running alongside the
simulation instead of after it:

* per-phase measured seconds vs modeled seconds, accumulated into
  :class:`~repro.observability.profile.roofline.Attribution` records with
  an efficiency percentage and a mem/compute/comm bound classification;
* achieved gather--scatter bandwidth from the dssum byte counters;
* every (measured, modeled) pair fed to a
  :class:`~repro.observability.profile.drift.ModelDriftDetector`, so a
  ratio excursion raises ``profile.drift.<phase>`` immediately.

Attach via ``Simulation(..., profiler=ContinuousProfiler(...))``; the
:class:`~repro.comm.distributed_solver.DistributedConjugateGradient`
feeds :meth:`observe_distributed_solve` with its collective counts.  The
per-step cost is a handful of dict lookups and the work model's closed-
form arithmetic -- no new timers on the hot path, and nothing at all when
no profiler is attached.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from repro.observability.profile.drift import ModelDriftDetector
from repro.observability.profile.roofline import Attribution, classify_phase_bound
from repro.observability.tracer import NULL_TRACER
from repro.perfmodel.machine import LUMI, MachineSpec
from repro.perfmodel.network import NetworkModel
from repro.perfmodel.workmodel import SEMWorkModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import MetricsRegistry

__all__ = ["ContinuousProfiler"]

#: Phases the work model predicts and the region timers measure.
MODELED_PHASES: tuple[str, ...] = ("advection", "pressure", "velocity", "temperature")

#: Allreduces per distributed-CG solve: two for the initial rho/residual
#: norm, three per iteration (p.Ap, the residual norm, the new rho) --
#: the executable counts of ``DistributedConjugateGradient``.
CG_ALLREDUCES_SETUP = 2
CG_ALLREDUCES_PER_ITER = 3


class ContinuousProfiler:
    """Accumulates measured-vs-modeled attributions across a run.

    Parameters
    ----------
    machine:
        The :class:`~repro.perfmodel.machine.MachineSpec` supplying the
        device and network model (default LUMI).  On a CPU host the
        absolute ratios are large but *stable*; the default drift
        detector is relative, so only departures from the run's own
        baseline flag.
    work:
        Base :class:`SEMWorkModel`; its iteration counts are overridden
        per step with the step's measured counts.
    n_ranks:
        Rank count assumed for the modeled halo/allreduce costs.
    drift:
        A :class:`ModelDriftDetector`; a relative-band default is built
        when omitted (``drift_band`` sets its low/high).
    """

    def __init__(
        self,
        machine: MachineSpec | None = None,
        work: SEMWorkModel | None = None,
        n_ranks: int = 1,
        tracer: Any = None,
        metrics: "MetricsRegistry | None" = None,
        drift: ModelDriftDetector | None = None,
        drift_band: tuple[float, float] = (0.5, 2.0),
    ) -> None:
        self.machine = machine if machine is not None else LUMI
        self.work = work if work is not None else SEMWorkModel()
        self.n_ranks = max(1, int(n_ranks))
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.net = NetworkModel(self.machine)
        self.drift = (
            drift
            if drift is not None
            else ModelDriftDetector(
                low=drift_band[0],
                high=drift_band[1],
                tracer=self.tracer,
                metrics=metrics,
            )
        )
        self.steps = 0
        #: Accumulated (measured seconds, modeled seconds, count) per series.
        self._measured: dict[str, float] = {}
        self._modeled: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._bounds: dict[str, str] = {}
        self._gbps: dict[str, float] = {}
        # Snapshot of the cumulative sources, so each step sees deltas.
        self._last_totals: dict[str, float] = {}
        self._last_gs: tuple[int, int, float] = (0, 0, 0.0)

    # -- accumulation helpers ---------------------------------------------------

    def _record(
        self,
        name: str,
        measured: float,
        modeled: float,
        bound: str,
        step: int,
        gbps: float | None = None,
    ) -> None:
        self._measured[name] = self._measured.get(name, 0.0) + measured
        self._modeled[name] = self._modeled.get(name, 0.0) + modeled
        self._counts[name] = self._counts.get(name, 0) + 1
        self._bounds[name] = bound
        if gbps is not None:
            self._gbps[name] = gbps
        self.drift.observe(name, measured, modeled, step=step)
        if self.metrics is not None and modeled > 0.0:
            self.metrics.gauge(f"profile.{name}.ratio").set(measured / modeled)

    # -- per-step hook ----------------------------------------------------------

    def observe_step(self, sim: Any, result: Any, step_seconds: float | None = None) -> None:
        """Attribute one completed step of ``sim``.

        Duck-typed like the anomaly monitor's ``observe_step``: uses
        ``sim.timers.totals`` (cumulative region seconds), ``sim.space.gs``
        (cumulative dssum traffic) and ``sim.space.mesh.nelv``; reads the
        step's iteration counts from ``result``.
        """
        step = int(getattr(result, "step", self.steps + 1))
        totals = sim.timers.totals
        phase_measured = {
            ph: totals.get(ph, 0.0) - self._last_totals.get(ph, 0.0)
            for ph in MODELED_PHASES
        }
        self._last_totals = {ph: totals.get(ph, 0.0) for ph in MODELED_PHASES}

        gs = sim.space.gs
        gs_calls, gs_bytes, gs_seconds = (
            gs.calls - self._last_gs[0],
            gs.bytes_moved - self._last_gs[1],
            gs.seconds - self._last_gs[2],
        )
        self._last_gs = (gs.calls, gs.bytes_moved, gs.seconds)

        wm = dataclasses.replace(
            self.work,
            pressure_iterations=max(1, int(getattr(result, "pressure_iterations", 0))),
            velocity_iterations=max(1, int(getattr(result, "velocity_iterations", 0))),
            temperature_iterations=max(1, int(getattr(result, "temperature_iterations", 0))),
        )
        ne_local = sim.space.mesh.nelv / self.n_ranks
        costs = wm.step_costs(ne_local, self.machine.device, self.net, self.n_ranks)

        for ph in MODELED_PHASES:
            measured = phase_measured[ph]
            if measured <= 0.0:
                continue
            modeled = wm.phase_total_us(costs[ph]) * 1e-6
            self._record(ph, measured, modeled, classify_phase_bound(costs[ph]), step)

        if gs_seconds > 0.0 and gs_bytes > 0:
            bw = self.machine.device.peak_bandwidth_gbs * 1e9 * wm.bandwidth_efficiency
            self._record(
                "gather_scatter",
                gs_seconds,
                gs_bytes / bw,
                "comm",
                step,
                gbps=gs_bytes / gs_seconds / 1e9,
            )
            if self.metrics is not None:
                self.metrics.gauge("profile.gs.achieved_gbps").set(
                    gs_bytes / gs_seconds / 1e9
                )

        if step_seconds is not None and step_seconds > 0.0:
            modeled_step = wm.step_time_us(ne_local, self.machine.device, self.net, self.n_ranks) * 1e-6
            self._record("step", step_seconds, modeled_step, "mem", step)
            if self.tracer.enabled and modeled_step > 0.0:
                self.tracer.sample("profile.step.ratio", step_seconds / modeled_step)

        self.steps += 1
        if self.metrics is not None:
            self.metrics.counter("profile.steps").inc()
        if gs_calls and self.metrics is not None:
            self.metrics.gauge("profile.gs.calls_per_step").set(float(gs_calls))

    # -- distributed hook -------------------------------------------------------

    def observe_distributed_solve(
        self,
        iterations: int,
        allreduce_calls: int,
        p2p_messages: int = 0,
        n_ranks: int | None = None,
        step: int = -1,
    ) -> None:
        """Attribute one distributed-CG solve's collective counts.

        The work model budgets a fixed number of allreduces per CG
        iteration; the simulated world counts the ones that actually
        happened.  A diverging ratio means the solver's communication
        structure changed -- extra restarts, a different orthogonalization
        -- which the wall time alone cannot distinguish from slow silicon.
        """
        modeled = float(CG_ALLREDUCES_SETUP + CG_ALLREDUCES_PER_ITER * max(1, iterations))
        ranks = self.n_ranks if n_ranks is None else n_ranks
        self._record(
            "dist_cg.allreduces", float(allreduce_calls), modeled, "comm", step
        )
        if self.metrics is not None:
            self.metrics.gauge("profile.dist_cg.allreduces_per_iter").set(
                allreduce_calls / max(1, iterations)
            )
            if p2p_messages:
                self.metrics.gauge("profile.dist_cg.p2p_per_rank").set(
                    p2p_messages / max(1, ranks)
                )

    # -- results ----------------------------------------------------------------

    def attributions(self) -> list[Attribution]:
        """Run-averaged attribution per observed series, largest first."""
        out = []
        for name in self._measured:
            n = max(1, self._counts[name])
            out.append(
                Attribution(
                    name=name,
                    measured_seconds=self._measured[name] / n,
                    modeled_seconds=self._modeled[name] / n,
                    bound=self._bounds[name],
                    achieved_gbps=self._gbps.get(name, 0.0),
                )
            )
        return sorted(out, key=lambda a: -a.measured_seconds)

    def attribution_record(self) -> dict:
        """JSON-ready summary (the ``profile.attribution`` payload)."""
        return {
            "machine": self.machine.name,
            "n_ranks": self.n_ranks,
            "steps": self.steps,
            "series": {
                a.name: {
                    "measured_seconds": a.measured_seconds,
                    "modeled_seconds": a.modeled_seconds,
                    "ratio": a.ratio if a.modeled_seconds > 0 else None,
                    "efficiency_pct": a.efficiency,
                    "bound": a.bound,
                }
                for a in self.attributions()
            },
            "drift_events": len(self.drift.events),
        }

    def emit_attribution(self) -> None:
        """Record the end-of-run summary as a ``profile.attribution`` event."""
        self.tracer.event("profile.attribution", cat="profile", **{
            "steps": self.steps, "machine": self.machine.name,
            "drift_events": len(self.drift.events),
        })
