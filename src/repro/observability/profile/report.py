"""Text reports for the continuous profiler.

Two consumers: the run-side report of a :class:`ContinuousProfiler`
(per-phase measured vs modeled, the Fig. 4 taxonomy with efficiency and
bound columns) and the bench-side roofline table covering every kernel of
a ``BENCH_kernels.json`` record -- the acceptance surface of the
observability ISSUE: each kernel gets an achieved bandwidth, an
efficiency percentage and a mem/compute bound classification.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.gpu.device import GpuModel
from repro.observability.profile.roofline import (
    Attribution,
    KernelSample,
    attribute_kernel,
    calibrate_host_model,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.profile.profiler import ContinuousProfiler

__all__ = ["render_attribution_table", "kernel_roofline_report", "profiler_report"]


def render_attribution_table(attributions: list[Attribution]) -> str:
    """Aligned measured/modeled/efficiency/bound table."""
    header = (
        f"  {'series':<18s} {'measured':>12s} {'modeled':>12s} "
        f"{'ratio':>8s} {'eff %':>7s} {'GB/s':>8s}  bound"
    )
    lines = [header, "  " + "-" * (len(header) - 2)]
    for a in attributions:
        ratio = f"x{a.ratio:.2f}" if math.isfinite(a.ratio) else "-"
        gbps = f"{a.achieved_gbps:8.2f}" if a.achieved_gbps else f"{'-':>8s}"
        lines.append(
            f"  {a.name:<18s} {a.measured_seconds * 1e3:9.3f} ms "
            f"{a.modeled_seconds * 1e3:9.3f} ms {ratio:>8s} "
            f"{a.efficiency:6.1f}% {gbps}  {a.bound}"
        )
    return "\n".join(lines)


def kernel_roofline_report(bench: dict, device: GpuModel | None = None) -> str:
    """Roofline table for every kernel of a ``BENCH_kernels.json`` record.

    ``bench`` is the parsed JSON (or just its ``results`` mapping).  The
    device defaults to a host model calibrated from the record itself
    (:func:`calibrate_host_model`), so efficiencies read as fractions of
    this host's demonstrated bandwidth; pass a Table 1 device to compare
    against the paper's machines instead.
    """
    results = bench.get("results", bench)
    if device is None:
        device = calibrate_host_model(results)
    attributions = []
    for name in sorted(results):
        rec = results[name]
        seconds = rec.get("seconds")
        nbytes = rec.get("bytes")
        if not seconds or not nbytes:
            continue
        sample = KernelSample(
            name=name,
            seconds=float(seconds),
            bytes_moved=float(nbytes),
            flops=float(rec.get("flops", 0.0)),
        )
        attributions.append(attribute_kernel(sample, device))
    lines = [
        f"kernel roofline vs {device.name} "
        f"({device.peak_bandwidth_gbs:.2f} GB/s peak, "
        f"{device.peak_fp64_tflops * 1e3:.1f} GFLOP/s FP64):",
        render_attribution_table(sorted(attributions, key=lambda a: -a.measured_seconds)),
    ]
    return "\n".join(lines)


def profiler_report(profiler: "ContinuousProfiler") -> str:
    """End-of-run report: attribution table plus the drift tally."""
    lines = [
        f"continuous profile: {profiler.steps} steps, modeled as "
        f"{profiler.machine.name} x{profiler.n_ranks} rank"
        f"{'s' if profiler.n_ranks != 1 else ''}",
        render_attribution_table(profiler.attributions()),
    ]
    if profiler.drift.events:
        lines.append(f"model drift: {len(profiler.drift.events)} excursion(s)")
        lines.append(profiler.drift.summary())
    else:
        lines.append("model drift: none (all series inside the band)")
    return "\n".join(lines)
