"""Roofline attribution: measured samples against perfmodel predictions.

The roofline model says a kernel can go no faster than the slower of its
bandwidth time (``bytes / peak BW``) and its flop time (``flops / peak
FP64``); :class:`~repro.gpu.device.GpuModel.kernel_duration_us` encodes
exactly that.  This module turns a measured sample (seconds + bytes +
optional flops) into an :class:`Attribution`: modeled seconds, the
measured/modeled ratio, an efficiency percentage and a bound
classification -- ``mem`` (bandwidth roof), ``compute`` (flop roof or
launch-latency dominated) or ``comm`` (halo/allreduce dominated, only
meaningful for phases with a network component).

Phase attributions use the :class:`~repro.perfmodel.workmodel.PhaseCost`
decomposition instead of a single roofline: the work model already splits
each phase into compute, launch, halo and allreduce microseconds, so the
bound is whichever component dominates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.device import GpuModel
from repro.perfmodel.workmodel import PhaseCost, SEMWorkModel

__all__ = [
    "KernelSample",
    "Attribution",
    "classify_kernel_bound",
    "classify_phase_bound",
    "attribute_kernel",
    "attribute_phase",
    "calibrate_host_model",
]

#: Assumed FP64 throughput per byte of bandwidth for a calibrated host
#: model: CPUs in this repo's test environment sustain on the order of
#: ten flops per byte moved, which keeps the dealiasing kernel (the only
#: genuinely compute-heavy one) on the right side of the ridge.
_HOST_FLOPS_PER_BYTE = 10.0


@dataclass(frozen=True)
class KernelSample:
    """One measured kernel: wall seconds plus its traffic accounting."""

    name: str
    seconds: float
    bytes_moved: float
    flops: float = 0.0

    @property
    def achieved_gbps(self) -> float:
        """Achieved memory bandwidth, GB/s."""
        return self.bytes_moved / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def achieved_gflops(self) -> float:
        """Achieved FP64 rate, GFLOP/s (0 when flops were not counted)."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class Attribution:
    """Measured-vs-modeled verdict for one kernel or phase.

    ``ratio`` is measured/modeled (> 1 means slower than the model);
    ``efficiency`` is the inverse as a percentage (100 % = exactly the
    model's prediction, the paper's "fraction of roofline" figure).
    ``bound`` is one of ``mem``, ``compute``, ``comm``.
    """

    name: str
    measured_seconds: float
    modeled_seconds: float
    bound: str
    achieved_gbps: float = 0.0

    @property
    def ratio(self) -> float:
        if self.modeled_seconds <= 0.0:
            return math.inf
        return self.measured_seconds / self.modeled_seconds

    @property
    def efficiency(self) -> float:
        """Modeled/measured as a percentage (capped below at 0)."""
        if self.measured_seconds <= 0.0:
            return 0.0
        return 100.0 * self.modeled_seconds / self.measured_seconds


def classify_kernel_bound(bytes_moved: float, flops: float, device: GpuModel) -> str:
    """``mem`` or ``compute``: which roofline limb the kernel sits under."""
    t_bw = bytes_moved / (device.peak_bandwidth_gbs * 1e9)
    t_fl = flops / (device.peak_fp64_tflops * 1e12) if flops else 0.0
    return "compute" if t_fl > t_bw else "mem"


def classify_phase_bound(cost: PhaseCost) -> str:
    """Dominant component of a modeled phase: ``mem``/``compute``/``comm``.

    Halo plus allreduce time dominating the device-side estimate makes the
    phase communication-bound; otherwise launch overhead exceeding the
    bandwidth-derived compute time means the phase is latency/compute-side
    bound (the coarse-solve situation the paper overlaps away), else it is
    memory-bandwidth bound like the bulk of SEM.
    """
    device_side = max(cost.compute_us, cost.launch_us)
    if cost.halo_us + cost.allreduce_us >= device_side:
        return "comm"
    if cost.launch_us > cost.compute_us:
        return "compute"
    return "mem"


def attribute_kernel(sample: KernelSample, device: GpuModel) -> Attribution:
    """Roofline attribution of one measured kernel against ``device``."""
    modeled = device.kernel_duration_us(sample.bytes_moved, sample.flops) * 1e-6
    return Attribution(
        name=sample.name,
        measured_seconds=sample.seconds,
        modeled_seconds=modeled,
        bound=classify_kernel_bound(sample.bytes_moved, sample.flops, device),
        achieved_gbps=sample.achieved_gbps,
    )


def attribute_phase(
    name: str,
    measured_seconds: float,
    cost: PhaseCost,
    work: SEMWorkModel | None = None,
) -> Attribution:
    """Attribution of one measured phase against its modeled cost."""
    total_us = (
        SEMWorkModel.phase_total_us(cost) if work is None else work.phase_total_us(cost)
    )
    return Attribution(
        name=name,
        measured_seconds=measured_seconds,
        modeled_seconds=total_us * 1e-6,
        bound=classify_phase_bound(cost),
    )


def calibrate_host_model(results: dict) -> GpuModel:
    """A :class:`GpuModel` calibrated from a kernel bench record.

    The committed baselines are measured on whatever CPU ran CI, not on an
    MI250X; comparing them against Table 1 peaks would put every kernel at
    a fraction of a percent "efficiency" and bury real drift.  Instead,
    the *best achieved* bandwidth across the measured kernels becomes the
    calibrated peak -- efficiencies then read as "fraction of what this
    host demonstrably sustains", the same normalization the paper uses
    when it reports fractions of roofline per platform.

    ``results`` is the ``{name: {seconds, bytes, gbps}}`` mapping of
    ``BENCH_kernels.json``; entries without a bandwidth figure are
    ignored.  Raises :class:`ValueError` when nothing is calibratable.
    """
    peaks = []
    for rec in results.values():
        gbps = rec.get("gbps")
        if gbps is None and rec.get("seconds") and rec.get("bytes"):
            gbps = rec["bytes"] / rec["seconds"] / 1e9
        if gbps is not None and math.isfinite(gbps) and gbps > 0:
            peaks.append(float(gbps))
    if not peaks:
        raise ValueError("no kernel entry carries a bandwidth figure to calibrate from")
    peak_bw = max(peaks)
    return GpuModel(
        name="host (calibrated)",
        peak_bandwidth_gbs=peak_bw,
        peak_fp64_tflops=peak_bw * _HOST_FLOPS_PER_BYTE / 1e3,
        launch_overhead_us=0.0,
        submit_delay_us=0.0,
        min_kernel_us=0.0,
        requires_priority_for_concurrency=False,
    )
