"""Perfmodel-grounded continuous profiling.

The paper validates its performance narrative by comparing measured
kernel and phase times against roofline expectations (Sec. 5, Figs. 3-4);
this package is the same methodology turned into always-on
instrumentation for the Python solver:

* :mod:`repro.observability.profile.roofline` -- achieved-bandwidth /
  flop figures for kernel samples and phase measurements, attributed
  against the :mod:`repro.perfmodel` predictions (measured vs modeled
  seconds, efficiency, memory/compute/comm bound classification);
* :mod:`repro.observability.profile.drift` -- the online
  :class:`ModelDriftDetector` that flags when the measured/modeled ratio
  of a series leaves a configurable band (``profile.drift.<series>``
  events);
* :mod:`repro.observability.profile.profiler` -- the
  :class:`ContinuousProfiler` fed per step from the simulation's region
  timers and gather--scatter traffic counters (and per solve from the
  distributed CG), accumulating attributions and driving the drift
  detector;
* :mod:`repro.observability.profile.report` -- text reports: the
  per-phase measured-vs-modeled table and the roofline table covering
  every kernel of the committed bench baseline.

Everything is pure arithmetic over numbers the solver already measures:
no extra timers on the hot path, no wall-clock reads, deterministic given
the run.
"""

from repro.observability.profile.drift import DriftEvent, ModelDriftDetector
from repro.observability.profile.profiler import ContinuousProfiler
from repro.observability.profile.report import (
    kernel_roofline_report,
    profiler_report,
    render_attribution_table,
)
from repro.observability.profile.roofline import (
    Attribution,
    KernelSample,
    attribute_kernel,
    attribute_phase,
    calibrate_host_model,
    classify_kernel_bound,
    classify_phase_bound,
)

__all__ = [
    "KernelSample",
    "Attribution",
    "classify_kernel_bound",
    "classify_phase_bound",
    "attribute_kernel",
    "attribute_phase",
    "calibrate_host_model",
    "DriftEvent",
    "ModelDriftDetector",
    "ContinuousProfiler",
    "render_attribution_table",
    "kernel_roofline_report",
    "profiler_report",
]
