"""Online model-drift detection: measured/modeled ratio leaving its band.

The performance model is only useful while it keeps predicting; when the
measured/modeled ratio of a phase doubles, either the code regressed or
the model's assumptions (iteration counts, bandwidth efficiency) no
longer hold -- both are worth an alarm long before a human reads a
campaign report.  :class:`ModelDriftDetector` watches each series' ratio
online and flags excursions outside a configurable band.

Two band semantics:

* ``relative=True`` (default): the band applies to the ratio *normalized
  by the series' own warm-up baseline* (median of the first ``warmup``
  ratios).  A CPU host is legitimately ~1000x slower than the LUMI model;
  what matters is that its ratio stays where it started.  This makes the
  detector machine-independent.
* ``relative=False``: the band applies to the raw measured/modeled ratio,
  for runs calibrated against a matching machine model.

Flagged events are mirrored to the tracer (a ``profile.drift.<series>``
instant plus a counter sample of the ratio, so drift renders as a lane in
the exported trace) and to the metrics registry.  Pure arithmetic, no
wall-clock reads: deterministic given the observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.observability.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import MetricsRegistry

__all__ = ["DriftEvent", "ModelDriftDetector"]


@dataclass(frozen=True)
class DriftEvent:
    """One flagged excursion of a series' measured/modeled ratio."""

    series: str
    measured: float
    modeled: float
    ratio: float
    baseline: float
    normalized: float
    direction: str  # "above" (slower than band) or "below" (faster)
    step: int = -1

    def describe(self) -> str:
        return (
            f"{self.series}: measured/modeled x{self.ratio:.3g} is "
            f"x{self.normalized:.2f} {self.direction} its baseline x{self.baseline:.3g}"
        )


class ModelDriftDetector:
    """Per-series band check on the measured/modeled ratio.

    Parameters
    ----------
    low, high:
        The allowed band.  With ``relative=True`` these bound the ratio
        divided by its warm-up baseline (0.5/2.0 = "within 2x of where
        this series started"); with ``relative=False`` they bound the raw
        ratio.
    warmup:
        Observations per series absorbed to establish the baseline before
        any flagging.
    """

    def __init__(
        self,
        low: float = 0.5,
        high: float = 2.0,
        warmup: int = 3,
        relative: bool = True,
        tracer: Any = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if not 0.0 < low < high:
            raise ValueError("need 0 < low < high for the drift band")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.low = low
        self.high = high
        self.warmup = warmup
        self.relative = relative
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: Warm-up ratios per series (kept only until the baseline is set).
        self._warmup_ratios: dict[str, list[float]] = {}
        #: Established baseline ratio per series (1.0 in absolute mode).
        self.baselines: dict[str, float] = {}
        self.events: list[DriftEvent] = []

    def observe(
        self, series: str, measured: float, modeled: float, step: int = -1
    ) -> DriftEvent | None:
        """Feed one (measured, modeled) pair; returns the event if it flags."""
        if not (
            math.isfinite(measured)
            and math.isfinite(modeled)
            and measured > 0.0
            and modeled > 0.0
        ):
            return None
        ratio = measured / modeled
        baseline = self.baselines.get(series)
        if baseline is None:
            if not self.relative:
                baseline = 1.0
                self.baselines[series] = baseline
            else:
                seen = self._warmup_ratios.setdefault(series, [])
                seen.append(ratio)
                if len(seen) < self.warmup:
                    return None
                baseline = sorted(seen)[len(seen) // 2]
                self.baselines[series] = baseline
                del self._warmup_ratios[series]
                return None  # the baseline-setting observation never flags
        normalized = ratio / baseline
        if self.low <= normalized <= self.high:
            return None
        event = DriftEvent(
            series=series,
            measured=measured,
            modeled=modeled,
            ratio=ratio,
            baseline=baseline,
            normalized=normalized,
            direction="above" if normalized > self.high else "below",
            step=step,
        )
        self.events.append(event)
        self.tracer.event(
            f"profile.drift.{series}",
            cat="profile",
            measured=measured,
            modeled=modeled,
            ratio=ratio,
            normalized=normalized,
            direction=event.direction,
            step=step,
        )
        self.tracer.sample(f"profile.drift.{series}", normalized)
        if self.metrics is not None:
            self.metrics.counter(f"profile.drift.{series}").inc()
        return event

    def summary(self) -> str:
        """One line per flagged event (empty string when clean)."""
        return "\n".join(ev.describe() for ev in self.events)
