"""Per-rank telemetry: one tracer + metrics registry per simulated rank.

The paper's scaling evidence (Fig. 3 parallel efficiency, Fig. 4 phase
breakdown) is inherently *per-rank*: stragglers and scaling loss only show
up when every rank is instrumented and the records are merged.  The PR 2
observability layer is single-tracer-per-process; this module adds the
distributed half for the simulated rank world: a :class:`FleetTelemetry`
holds one :class:`RankTracer` (a :class:`~repro.observability.tracer.Tracer`
plus :class:`~repro.observability.metrics.MetricsRegistry` pair) per rank,
all sharing one timeline origin so their merged Chrome trace aligns.

Attachment is duck-typed: ``fleet.attach(world, dgs, solver)`` sets the
``fleet`` attribute on each target, and the instrumented classes
(:class:`~repro.comm.simworld.SimWorld`,
:class:`~repro.comm.distributed_gs.DistributedGatherScatter`,
:class:`~repro.comm.distributed_solver.DistributedConjugateGradient`)
emit per-rank ``fleet.*`` spans and metrics when one is present, and pay
nothing when it is not.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterator

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.simworld import SimWorld
    from repro.observability.fleet.imbalance import ImbalanceReport

__all__ = ["RankTracer", "FleetTelemetry"]


class RankTracer:
    """One rank's telemetry pair; every span/event is tagged with the rank."""

    __slots__ = ("rank", "tracer", "metrics")

    def __init__(self, rank: int, tracer: Tracer, metrics: MetricsRegistry) -> None:
        self.rank = rank
        self.tracer = tracer
        self.metrics = metrics

    def span(self, name: str, **tags: Any):
        """Open a span on this rank's tracer, tagged with the rank."""
        return self.tracer.span(name, rank=self.rank, **tags)

    def record_span(
        self, name: str, duration: float, counters: dict[str, float] | None = None, **tags: Any
    ) -> Span:
        """Record an aggregate span on this rank's tracer."""
        return self.tracer.record_span(name, duration, counters=counters, rank=self.rank, **tags)

    def event(self, name: str, **tags: Any) -> Span:
        """Record an instant event on this rank's tracer."""
        return self.tracer.event(name, rank=self.rank, **tags)


class FleetTelemetry:
    """A set of per-rank tracers/registries sharing one timeline.

    Usage::

        fleet = FleetTelemetry(world.size)
        fleet.attach(world, dgs, solver)
        ... run ...
        trace = fleet.merge_traces()          # one pid lane per rank
        print(fleet.text_report())            # Fig. 4-style per-rank table

    The clock is injectable (and shared by every rank tracer) so tests can
    drive deterministic timelines.
    """

    def __init__(self, size: int, clock: Any = time.perf_counter) -> None:
        if size < 1:
            raise ValueError("fleet size must be >= 1")
        origin = clock()
        self.ranks: list[RankTracer] = [
            RankTracer(r, Tracer(clock=clock, origin=origin), MetricsRegistry())
            for r in range(size)
        ]

    @property
    def size(self) -> int:
        return len(self.ranks)

    def __len__(self) -> int:
        return len(self.ranks)

    def __getitem__(self, rank: int) -> RankTracer:
        return self.ranks[rank]

    def __iter__(self) -> Iterator[RankTracer]:
        return iter(self.ranks)

    # -- attachment -----------------------------------------------------------

    def attach(self, *targets: Any) -> "FleetTelemetry":
        """Set ``target.fleet = self`` on each target (duck-typed hook)."""
        for t in targets:
            t.fleet = self
        return self

    def publish_traffic(self, world: "SimWorld") -> None:
        """Snapshot per-rank traffic counters into each rank's registry.

        Idempotent gauge-setting, mirroring
        :meth:`~repro.comm.simworld.SimWorld.publish_metrics` for the
        per-rank counters the imbalance analytics consume.
        """
        for rt in self.ranks:
            totals = world.stats.rank_totals(rt.rank)
            for key, value in totals.items():
                rt.metrics.gauge(f"fleet.comm.{key}").set(value)

    # -- merged views ---------------------------------------------------------

    def merge_traces(self) -> dict:
        """Single Chrome trace with one ``pid`` lane per rank."""
        from repro.observability.fleet.merge import merge_traces

        return merge_traces(self)

    def text_report(self) -> str:
        """Per-rank/per-phase wall-time table with imbalance statistics."""
        return self.imbalance().render()

    def imbalance(self) -> "ImbalanceReport":
        """Imbalance analytics over all recorded per-rank spans."""
        from repro.observability.fleet.imbalance import analyze_fleet

        return analyze_fleet(self)

    def reset(self) -> None:
        """Drop all recorded spans and metrics on every rank."""
        for rt in self.ranks:
            rt.tracer.reset()
            rt.metrics.reset()
