"""Crash flight recorder: a bounded ring of recent steps, dumped on failure.

When a week-long campaign dies, the question is never "did it die" but
"what were the last minutes like": were the pressure iterations climbing,
had the CFL crept up, was the in-situ queue backing up, which resilience
events fired.  A full trace of the whole run is too large to keep; the
flight recorder keeps only the last ``capacity`` steps -- per-step spans,
a metrics snapshot, solver-monitor records and the step result -- plus a
bounded tail of resilience/anomaly events, and writes the whole bundle
*atomically* (temp file + ``os.replace``) as JSONL when something trips:

* the divergence guard in :meth:`Simulation.run` (wired via the
  simulation's ``flight=`` parameter);
* :class:`~repro.resilience.runner.ResilientRunner` exhausting its retry
  budget (``flight=`` parameter, or adopted from the simulation);
* any exception inside an :meth:`armed` block, or a signal registered via
  :meth:`install_signal_handler`.

Bundles load back with :meth:`FlightBundle.load` and via the
``python -m repro.observability flight`` CLI.  The default output
directory honours the ``REPRO_FLIGHT_DIR`` environment variable so CI can
collect bundles as artifacts from failing jobs.
"""

from __future__ import annotations

import json
import os
import signal as _signal
from collections import deque
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.observability.jsonio import dump_line

__all__ = ["FlightFrame", "FlightRecorder", "FlightBundle", "FLIGHT_DIR_ENV"]

#: Environment variable naming the default dump directory.
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Best-effort conversion for numpy scalars and exotic payloads."""
    for caster in (float, int):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return repr(value)


@dataclass
class FlightFrame:
    """One step's record: result summary, monitors, metrics, spans."""

    step: int
    time: float
    result: dict = field(default_factory=dict)
    monitors: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)

    def as_record(self) -> dict:
        return {"kind": "frame", **asdict(self)}

    @classmethod
    def from_record(cls, rec: dict) -> "FlightFrame":
        return cls(
            step=int(rec.get("step", -1)),
            time=float(rec.get("time", 0.0)),
            result=dict(rec.get("result", {})),
            monitors=list(rec.get("monitors", [])),
            metrics=dict(rec.get("metrics", {})),
            spans=list(rec.get("spans", [])),
        )


class FlightRecorder:
    """Bounded in-memory ring of step frames and events.

    Parameters
    ----------
    capacity:
        Steps retained (the "last N steps" window).
    event_capacity:
        Events retained; defaults to ``8 * capacity`` so a retry storm
        does not evict the frames' context.
    out_dir:
        Where :meth:`dump` writes when given no explicit path; defaults to
        ``$REPRO_FLIGHT_DIR`` (read at dump time) or the working directory.
    """

    def __init__(
        self,
        capacity: int = 16,
        event_capacity: int | None = None,
        out_dir: "Path | str | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.frames: deque[FlightFrame] = deque(maxlen=capacity)
        self.events: deque[dict] = deque(maxlen=event_capacity or 8 * capacity)
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.dumps: list[Path] = []
        #: ``{name: zero-arg callable}`` polled at dump time; each yields a
        #: JSON-serializable state dict written as a ``"state"`` record.
        #: The anomaly monitor registers itself here so a crash bundle
        #: carries its detectors' running statistics (see
        #: :attr:`~repro.observability.fleet.anomaly.AnomalyMonitor.flight`).
        self.state_providers: dict[str, Callable[[], dict]] = {}

    # -- recording ------------------------------------------------------------

    def record_step(self, sim: Any, result: Any) -> FlightFrame:
        """Capture one completed step from a simulation-like object.

        Duck-typed: uses ``sim.tracer`` (the last completed ``step`` root
        span, when a live tracer is attached), ``sim.metrics`` and the
        fluid/scalar solver monitors when present; a bare object with none
        of them still yields a frame with the step result.
        """
        result_rec = asdict(result) if is_dataclass(result) else dict(vars(result))
        monitors: list[dict] = []
        for scheme_name in ("fluid", "scalar"):
            scheme = getattr(sim, scheme_name, None)
            for mon in getattr(scheme, "monitors", {}).values():
                if hasattr(mon, "as_record"):
                    monitors.append(mon.as_record())
        metrics = getattr(sim, "metrics", None)
        frame = FlightFrame(
            step=int(result_rec.get("step", getattr(sim, "step_count", -1))),
            time=float(result_rec.get("time", getattr(sim, "time", 0.0))),
            result=result_rec,
            monitors=monitors,
            metrics=metrics.snapshot() if metrics is not None else {},
            spans=self._last_step_spans(getattr(sim, "tracer", None)),
        )
        self.frames.append(frame)
        return frame

    @staticmethod
    def _last_step_spans(tracer: Any) -> list[dict]:
        """Flat records of the most recent completed root span tree."""
        roots = getattr(tracer, "roots", None)
        if not roots:
            return []
        for root in reversed(roots):
            if root.end is None:
                continue
            return [
                {
                    "name": sp.name,
                    "start": sp.start,
                    "duration": sp.duration,
                    "depth": sp.depth,
                    "instant": sp.instant,
                    "tags": {str(k): _jsonable(v) for k, v in sp.tags.items()},
                    "counters": dict(sp.counters),
                }
                for sp in root.walk()
            ]
        return []

    def record_event(
        self, kind: str, step: int = -1, time: float = 0.0, detail: str = "", **data: Any
    ) -> dict:
        """Append one event (resilience, anomaly, lifecycle) to the ring."""
        ev = {
            "kind": "event",
            "event": kind,
            "step": int(step),
            "time": float(time),
            "detail": detail,
            "data": {str(k): _jsonable(v) for k, v in data.items()},
        }
        self.events.append(ev)
        return ev

    # -- dumping --------------------------------------------------------------

    def _resolve_path(self, path: "Path | str | None", reason: str) -> Path:
        if path is not None:
            return Path(path)
        out_dir = self.out_dir
        if out_dir is None:
            out_dir = Path(os.environ.get(FLIGHT_DIR_ENV, "."))
        last_step = self.frames[-1].step if self.frames else 0
        safe_reason = "".join(c if c.isalnum() else "_" for c in reason)
        return out_dir / f"flight_step{last_step:06d}_{safe_reason}.jsonl"

    def dump(self, path: "Path | str | None" = None, reason: str = "manual") -> Path:
        """Write the bundle atomically; returns the final path.

        The bundle is JSONL: a header line, then one line per frame
        (oldest first), then one line per event, then one ``"state"`` line
        per registered state provider.  Every line goes through the
        strict-JSON sanitizer (:mod:`repro.observability.jsonio`) -- a NaN
        gauge in a frame's metrics snapshot becomes ``null``, never an
        invalid ``NaN`` literal.  Written to a temporary sibling and moved
        into place with ``os.replace``, so a reader (or a second crash)
        never sees a half-written bundle.
        """
        target = self._resolve_path(path, reason)
        target.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "header",
            "schema": SCHEMA_VERSION,
            "reason": reason,
            "n_frames": len(self.frames),
            "n_events": len(self.events),
            "capacity": self.capacity,
            "steps": [f.step for f in self.frames],
        }
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(dump_line(header))
            for frame in self.frames:
                fh.write(dump_line(frame.as_record()))
            for ev in self.events:
                fh.write(dump_line(ev))
            for name, provider in sorted(self.state_providers.items()):
                fh.write(dump_line({"kind": "state", "name": name, "state": provider()}))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        self.dumps.append(target)
        return target

    # -- failure hooks --------------------------------------------------------

    @contextmanager
    def armed(
        self, path: "Path | str | None" = None, reason: str = "exception"
    ) -> Iterator["FlightRecorder"]:
        """Dump the bundle if the block raises; the exception propagates."""
        try:
            yield self
        except BaseException as exc:
            self.record_event("flight.exception", detail=repr(exc))
            self.dump(path=path, reason=reason)
            raise

    def install_signal_handler(
        self, signum: int = _signal.SIGTERM, path: "Path | str | None" = None
    ) -> None:
        """Dump on ``signum`` (then re-deliver to the previous handler).

        For batch systems that SIGTERM jobs at the wall-time limit: the
        bundle lands on disk before the process dies.
        """
        previous = _signal.getsignal(signum)

        def _handler(sig: int, frame: Any) -> None:
            self.record_event("flight.signal", detail=f"signal {sig}")
            self.dump(path=path, reason=f"signal{sig}")
            if callable(previous):
                previous(sig, frame)
            elif previous == _signal.SIG_DFL:
                _signal.signal(sig, _signal.SIG_DFL)
                _signal.raise_signal(sig)

        _signal.signal(signum, _handler)


@dataclass
class FlightBundle:
    """A parsed flight-recorder dump."""

    header: dict
    frames: list[FlightFrame] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    #: ``{provider name: state dict}`` from the recorder's state providers
    #: (e.g. ``"anomaly_monitor"`` -> detector statistics).
    states: dict[str, dict] = field(default_factory=dict)

    @property
    def steps(self) -> list[int]:
        return [f.step for f in self.frames]

    @classmethod
    def load(cls, path: "Path | str") -> "FlightBundle":
        """Parse a bundle written by :meth:`FlightRecorder.dump`."""
        header: dict | None = None
        frames: list[FlightFrame] = []
        events: list[dict] = []
        states: dict[str, dict] = {}
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                kind = rec.get("kind")
                if kind == "header":
                    header = rec
                elif kind == "frame":
                    frames.append(FlightFrame.from_record(rec))
                elif kind == "event":
                    events.append(rec)
                elif kind == "state":
                    states[str(rec.get("name"))] = dict(rec.get("state", {}))
                else:
                    raise ValueError(f"unknown flight record kind {kind!r}")
        if header is None:
            raise ValueError(f"{path}: not a flight bundle (no header line)")
        return cls(header=header, frames=frames, events=events, states=states)

    def summary(self) -> str:
        """Human-readable digest: window, reason, last frame, event tail."""
        steps = self.steps
        window = f"steps {steps[0]}..{steps[-1]}" if steps else "no frames"
        lines = [
            f"flight bundle: reason={self.header.get('reason')!r} "
            f"{window} ({len(self.frames)} frames, {len(self.events)} events)"
        ]
        if self.frames:
            last = self.frames[-1]
            res = last.result
            cfl = res.get("cfl")
            lines.append(
                f"last frame: step {last.step} t={last.time:.4f}"
                + (f" CFL={cfl:.3f}" if isinstance(cfl, float) else "")
            )
            for mon in last.monitors:
                lines.append(
                    f"  {mon.get('name', 'solve')}: {mon.get('iterations')} iters, "
                    f"converged={mon.get('converged')}"
                )
        for ev in self.events[-10:]:
            loc = f"step {ev['step']}" if ev.get("step", -1) >= 0 else ""
            lines.append(f"[{ev['event']}] {loc} {ev.get('detail', '')}".rstrip())
        if self.states:
            lines.append(f"carried state: {', '.join(sorted(self.states))}")
        return "\n".join(lines)
