"""Online anomaly detection: EWMA/z-score detectors over run telemetry.

A production campaign cannot wait for a post-hoc trace read to notice that
the pressure solve started taking 3x its usual iterations -- the paper's
Fig. 4 shows pressure already owns > 85 % of the step, so a sustained
iteration spike is the early warning of a dying run.  Detectors here
maintain an exponentially weighted moving average and variance per series
(Krylov iteration counts, step wall time, CFL, in-situ queue depth) and
flag observations whose z-score against the running statistics exceeds a
threshold.  A flagged :class:`Anomaly` is mirrored everywhere an operator
might look:

* an ``anomaly.<series>`` instant event on the tracer (visible in the
  Chrome-trace export, on the timeline where it happened);
* an ``anomaly.<series>`` counter in the metrics registry;
* an ``anomaly.<series>`` entry in the resilience
  :class:`~repro.resilience.events.EventLog`, so
  :class:`~repro.resilience.health.HealthCheck`-driven tooling and the
  flight recorder see it too.

Everything is pure arithmetic on observed values -- no wall-clock reads,
no RNG -- so detection is deterministic given the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.observability.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.fleet.flight import FlightRecorder

__all__ = ["Anomaly", "EwmaDetector", "AnomalyMonitor"]


@dataclass
class Anomaly:
    """One flagged observation with the statistics that flagged it."""

    series: str
    value: float
    mean: float
    std: float
    zscore: float
    step: int = -1

    def as_record(self) -> dict:
        return {
            "series": self.series,
            "value": self.value,
            "mean": self.mean,
            "std": self.std,
            "zscore": self.zscore,
            "step": self.step,
        }

    def describe(self) -> str:
        return (
            f"{self.series}: {self.value:g} vs EWMA {self.mean:g} "
            f"(z = {self.zscore:.1f})"
        )


class EwmaDetector:
    """EWMA mean/variance tracker flagging high-z observations.

    Parameters
    ----------
    alpha:
        EWMA weight of the newest observation (0.25 tracks a ~7-step
        effective window).
    z_threshold:
        Flag when ``|x - mean| / std`` meets or exceeds this.
    warmup:
        Observations absorbed before any flagging -- the statistics of the
        first few steps of a run (transient CFL growth, solver settling)
        are not a baseline.
    min_std, rel_floor:
        The denominator is floored at ``max(min_std, rel_floor * |mean|)``
        so near-constant series (a solver pinned at 8 iterations) flag
        genuine spikes without flagging +-1 jitter.
    """

    def __init__(
        self,
        series: str,
        alpha: float = 0.25,
        z_threshold: float = 4.0,
        warmup: int = 8,
        min_std: float = 1e-12,
        rel_floor: float = 0.1,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.series = series
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.min_std = min_std
        self.rel_floor = rel_floor
        self.mean = math.nan
        self.var = 0.0
        self.observations = 0

    def reset(self) -> None:
        """Forget the running statistics; the warm-up window starts over.

        After a rollback/restart the first samples of the resumed run are
        transient again -- re-entering warm-up keeps them from flagging
        against statistics that belong to a different flow state.
        """
        self.mean = math.nan
        self.var = 0.0
        self.observations = 0

    # -- serialization (flight-recorder round trip) ---------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of configuration + running state."""
        return {
            "series": self.series,
            "alpha": self.alpha,
            "z_threshold": self.z_threshold,
            "warmup": self.warmup,
            "min_std": self.min_std,
            "rel_floor": self.rel_floor,
            "mean": self.mean,
            "var": self.var,
            "observations": self.observations,
        }

    @classmethod
    def from_state(cls, state: dict) -> "EwmaDetector":
        """Rebuild a detector mid-stream from :meth:`state_dict` output.

        A ``mean`` of ``None`` (a NaN sanitized by the strict-JSON writer)
        restores to NaN -- the pre-first-observation value.
        """
        det = cls(
            str(state["series"]),
            alpha=float(state.get("alpha", 0.25)),
            z_threshold=float(state.get("z_threshold", 4.0)),
            warmup=int(state.get("warmup", 8)),
            min_std=float(state.get("min_std", 1e-12)),
            rel_floor=float(state.get("rel_floor", 0.1)),
        )
        mean = state.get("mean")
        det.mean = math.nan if mean is None else float(mean)
        det.var = float(state.get("var", 0.0) or 0.0)
        det.observations = int(state.get("observations", 0))
        return det

    def observe(self, value: float, step: int = -1) -> Anomaly | None:
        """Feed one observation; returns an :class:`Anomaly` if it flags.

        The running statistics always absorb the observation (after the
        z-test), so a level *shift* flags once and then becomes the new
        normal instead of alarming forever.
        """
        v = float(value)
        anomaly = None
        if self.observations == 0:
            self.mean, self.var = v, 0.0
        else:
            if self.observations >= self.warmup:
                std = max(math.sqrt(max(self.var, 0.0)), self.min_std,
                          self.rel_floor * abs(self.mean))
                z = abs(v - self.mean) / std
                if z >= self.z_threshold:
                    anomaly = Anomaly(
                        series=self.series,
                        value=v,
                        mean=self.mean,
                        std=std,
                        zscore=z,
                        step=step,
                    )
            diff = v - self.mean
            incr = self.alpha * diff
            self.mean += incr
            self.var = (1.0 - self.alpha) * (self.var + diff * incr)
        self.observations += 1
        return anomaly


class AnomalyMonitor:
    """A set of lazily created detectors with unified reporting.

    Construct once per run with the run's tracer / metrics / resilience
    event log, hand it to :class:`~repro.core.simulation.Simulation`
    (``anomalies=``) and the in-situ pipeline (``anomalies=``); every
    flagged observation is mirrored into all attached sinks and kept in
    :attr:`anomalies` for direct assertion.
    """

    #: Series observed per step from a :class:`StepResult` by
    #: :meth:`observe_step` (name, attribute).
    STEP_SERIES: tuple[tuple[str, str], ...] = (
        ("krylov.pressure.iterations", "pressure_iterations"),
        ("krylov.velocity.iterations", "velocity_iterations"),
        ("krylov.temperature.iterations", "temperature_iterations"),
        ("cfl", "cfl"),
    )

    def __init__(
        self,
        tracer: Any = None,
        metrics: "MetricsRegistry | None" = None,
        event_log: Any = None,
        flight: "FlightRecorder | None" = None,
        alpha: float = 0.25,
        z_threshold: float = 4.0,
        warmup: int = 8,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.event_log = event_log
        self._flight: "FlightRecorder | None" = None
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.detectors: dict[str, EwmaDetector] = {}
        self.anomalies: list[Anomaly] = []
        self.flight = flight

    @property
    def flight(self) -> "FlightRecorder | None":
        return self._flight

    @flight.setter
    def flight(self, recorder: "FlightRecorder | None") -> None:
        """Attach the flight sink; registers this monitor's state provider.

        The recorder pulls :meth:`state_dict` at dump time, so a crash
        bundle carries the detectors' running statistics and a restarted
        run can resume detection without re-warming (and without the
        level-shift false positives a cold restart would produce).
        """
        self._flight = recorder
        if recorder is not None:
            recorder.state_providers["anomaly_monitor"] = self.state_dict

    def reset(self) -> None:
        """Reset every detector into its warm-up window (kept, not dropped)."""
        for det in self.detectors.values():
            det.reset()

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every detector's running state."""
        return {
            "alpha": self.alpha,
            "z_threshold": self.z_threshold,
            "warmup": self.warmup,
            "detectors": {k: d.state_dict() for k, d in sorted(self.detectors.items())},
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        tracer: Any = None,
        metrics: "MetricsRegistry | None" = None,
        event_log: Any = None,
        flight: "FlightRecorder | None" = None,
    ) -> "AnomalyMonitor":
        """Rebuild a monitor (fresh sinks, restored detectors) from a dump."""
        mon = cls(
            tracer=tracer,
            metrics=metrics,
            event_log=event_log,
            flight=flight,
            alpha=float(state.get("alpha", 0.25)),
            z_threshold=float(state.get("z_threshold", 4.0)),
            warmup=int(state.get("warmup", 8)),
        )
        for series, det_state in state.get("detectors", {}).items():
            mon.detectors[str(series)] = EwmaDetector.from_state(det_state)
        return mon

    def detector(self, series: str) -> EwmaDetector:
        """The detector for ``series``, created on first use."""
        det = self.detectors.get(series)
        if det is None:
            det = EwmaDetector(
                series,
                alpha=self.alpha,
                z_threshold=self.z_threshold,
                warmup=self.warmup,
            )
            self.detectors[series] = det
        return det

    def observe(self, series: str, value: float, step: int = -1) -> Anomaly | None:
        """Feed one observation; mirror any flagged anomaly everywhere."""
        anomaly = self.detector(series).observe(value, step=step)
        if anomaly is None:
            return None
        self.anomalies.append(anomaly)
        record = anomaly.as_record()
        self.tracer.event(f"anomaly.{series}", cat="anomaly", **record)
        # A z-score counter sample alongside the instant: anomalies render
        # as a spiky lane in the exported trace, not just as markers.
        self.tracer.sample(f"anomaly.{series}", anomaly.zscore)
        data = dict(record)
        data.pop("step", None)  # passed positionally below
        if self.metrics is not None:
            self.metrics.counter(f"anomaly.{series}").inc()
        if self.event_log is not None:
            self.event_log.record(
                f"anomaly.{series}", step=step, detail=anomaly.describe(), **data
            )
        if self.flight is not None:
            self.flight.record_event(
                f"anomaly.{series}", step=step, detail=anomaly.describe(), **data
            )
        return anomaly

    def observe_step(self, sim: Any, result: Any, step_seconds: float | None = None) -> list[Anomaly]:
        """Feed every per-step series from one :class:`StepResult`.

        Watches the Krylov iteration counts, the CFL, the measured step
        wall time (when given) and -- when the simulation's metrics
        registry carries the pipeline's ``insitu.queue_depth`` gauge --
        the in-situ backlog.  Returns the newly flagged anomalies.
        """
        step = int(getattr(result, "step", -1))
        flagged: list[Anomaly] = []
        for series, attr in self.STEP_SERIES:
            value = getattr(result, attr, None)
            if value is None:
                continue
            a = self.observe(series, float(value), step=step)
            if a is not None:
                flagged.append(a)
        if step_seconds is not None:
            a = self.observe("step.seconds", float(step_seconds), step=step)
            if a is not None:
                flagged.append(a)
        metrics = getattr(sim, "metrics", None)
        if metrics is not None and "insitu.queue_depth" in metrics:
            depth = metrics.gauge("insitu.queue_depth").value
            if not math.isnan(depth):
                a = self.observe("insitu.queue_depth", depth, step=step)
                if a is not None:
                    flagged.append(a)
        return flagged
