"""Distributed per-rank telemetry over the simulated rank world.

The fleet layer is the multi-rank half of the observability story:

* :class:`~repro.observability.fleet.rank.FleetTelemetry` /
  :class:`~repro.observability.fleet.rank.RankTracer` -- one tracer +
  metrics registry per rank, attachable to :class:`SimWorld`,
  :class:`DistributedGatherScatter` and
  :class:`DistributedConjugateGradient`;
* :mod:`~repro.observability.fleet.merge` -- rank-merged Chrome traces
  (one ``pid`` lane per rank, the Fig. 2-style multi-rank flame chart);
* :mod:`~repro.observability.fleet.imbalance` -- per-phase max/mean/min
  across ranks, straggler identification, critical-path shares and a
  parallel-efficiency estimate comparable to ``perfmodel.scaling``;
* :mod:`~repro.observability.fleet.flight` -- the bounded crash flight
  recorder dumped atomically on divergence, retry-budget exhaustion,
  signals and armed exceptions;
* :mod:`~repro.observability.fleet.anomaly` -- online EWMA/z-score
  detectors over iteration counts, step wall time, CFL and queue depth.

Inspect bundles and traces with ``python -m repro.observability``.
"""

from repro.observability.fleet.anomaly import Anomaly, AnomalyMonitor, EwmaDetector
from repro.observability.fleet.flight import (
    FLIGHT_DIR_ENV,
    FlightBundle,
    FlightFrame,
    FlightRecorder,
)
from repro.observability.fleet.imbalance import (
    ImbalanceReport,
    PhaseImbalance,
    analyze_fleet,
    analyze_totals,
    phase_totals,
)
from repro.observability.fleet.merge import merge_trace_files, merge_traces, write_merged_trace
from repro.observability.fleet.rank import FleetTelemetry, RankTracer

__all__ = [
    "FleetTelemetry",
    "RankTracer",
    "merge_traces",
    "merge_trace_files",
    "write_merged_trace",
    "ImbalanceReport",
    "PhaseImbalance",
    "analyze_fleet",
    "analyze_totals",
    "phase_totals",
    "FlightRecorder",
    "FlightFrame",
    "FlightBundle",
    "FLIGHT_DIR_ENV",
    "Anomaly",
    "AnomalyMonitor",
    "EwmaDetector",
]
