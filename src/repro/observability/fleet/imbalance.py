"""Load-imbalance analytics over per-rank phase timings.

Strong scaling dies by imbalance: Fig. 3's efficiency loss at 16,384 GCDs
is, per Offermans et al., exactly the gap between the mean and the max of
the per-rank phase times -- every collective waits for the slowest rank.
This module turns a :class:`~repro.observability.fleet.rank.FleetTelemetry`
(or a plain ``{rank: {phase: seconds}}`` mapping, e.g. reconstructed from
a merged trace file by the CLI) into the Fig. 4-style per-rank breakdown:

* per-phase **max/mean/min** across ranks and the **straggler** rank;
* the **imbalance factor** ``max / mean`` (1.0 = perfectly balanced);
* each phase's **critical-path share** -- its max-across-ranks time as a
  fraction of the summed per-phase critical path;
* a **parallel-efficiency estimate** ``sum(mean) / sum(max)`` -- the
  fraction of the critical path doing average work, directly comparable
  to :class:`repro.perfmodel.scaling.ScalingPoint.parallel_efficiency`
  (both are 1.0 for perfect balance and degrade with stragglers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.fleet.rank import FleetTelemetry
    from repro.observability.tracer import Tracer

__all__ = [
    "PhaseImbalance",
    "ImbalanceReport",
    "phase_totals",
    "analyze_fleet",
    "analyze_totals",
]


@dataclass
class PhaseImbalance:
    """Cross-rank statistics of one phase (one span-name family)."""

    name: str
    per_rank: dict[int, float]
    calls: int = 0
    critical_path_share: float = math.nan

    @property
    def max_seconds(self) -> float:
        return max(self.per_rank.values()) if self.per_rank else math.nan

    @property
    def min_seconds(self) -> float:
        return min(self.per_rank.values()) if self.per_rank else math.nan

    @property
    def mean_seconds(self) -> float:
        vals = list(self.per_rank.values())
        return sum(vals) / len(vals) if vals else math.nan

    @property
    def straggler(self) -> int:
        """Rank with the largest total (lowest rank wins ties)."""
        if not self.per_rank:
            return -1
        return min(self.per_rank, key=lambda r: (-self.per_rank[r], r))

    @property
    def imbalance(self) -> float:
        """``max / mean`` across ranks; 1.0 means perfectly balanced."""
        mean = self.mean_seconds
        return self.max_seconds / mean if mean > 0 else math.nan


@dataclass
class ImbalanceReport:
    """Per-phase imbalance table plus fleet-level summary numbers."""

    phases: list[PhaseImbalance] = field(default_factory=list)
    n_ranks: int = 0

    @property
    def parallel_efficiency(self) -> float:
        """``sum(mean) / sum(max)`` over phases.

        The fraction of the critical path (every phase waits for its
        slowest rank) that average-rank work accounts for; comparable to
        the model-side ``ScalingPoint.parallel_efficiency``.
        """
        tot_max = sum(p.max_seconds for p in self.phases)
        tot_mean = sum(p.mean_seconds for p in self.phases)
        return tot_mean / tot_max if tot_max > 0 else math.nan

    def phase(self, name: str) -> PhaseImbalance:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"no phase {name!r} in the report")

    def straggler_counts(self) -> dict[int, int]:
        """``{rank: number of phases it straggles}`` (worst rank first)."""
        counts: dict[int, int] = {}
        for p in self.phases:
            if p.per_rank:
                counts[p.straggler] = counts.get(p.straggler, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def render(self) -> str:
        """Fig. 4-style text table: per-rank seconds plus imbalance stats."""
        lines = [f"== per-rank phase breakdown ({self.n_ranks} ranks) =="]
        if not self.phases:
            lines.append("(no per-rank spans recorded)")
            return "\n".join(lines)
        name_w = max(len(p.name) for p in self.phases)
        name_w = max(name_w, len("phase"))
        rank_cols = "".join(f"{'r' + str(r):>10s}" for r in range(self.n_ranks))
        lines.append(
            f"{'phase':<{name_w}s}{rank_cols}{'max':>10s}{'mean':>10s}{'min':>10s}"
            f"{'imbal':>7s}{'strag':>6s}{'cp%':>6s}"
        )
        for p in self.phases:
            per_rank = "".join(
                f"{p.per_rank.get(r, 0.0):>10.4f}" for r in range(self.n_ranks)
            )
            lines.append(
                f"{p.name:<{name_w}s}{per_rank}"
                f"{p.max_seconds:>10.4f}{p.mean_seconds:>10.4f}{p.min_seconds:>10.4f}"
                f"{p.imbalance:>7.2f}{p.straggler:>6d}"
                f"{100.0 * p.critical_path_share:>6.1f}"
            )
        lines.append(
            f"parallel efficiency (sum mean / sum max): "
            f"{100.0 * self.parallel_efficiency:.1f}%"
        )
        stragglers = self.straggler_counts()
        if stragglers:
            worst, n = next(iter(stragglers.items()))
            lines.append(f"worst straggler: rank {worst} ({n}/{len(self.phases)} phases)")
        return "\n".join(lines)


def phase_totals(tracer: "Tracer") -> dict[str, tuple[float, int]]:
    """``{span name: (total seconds, count)}`` over one rank's spans.

    Grouping is by *name* (not path): the fleet's per-rank spans are flat
    aggregates, and a phase's identity is its registered name.  Instant
    events carry no duration and are skipped.
    """
    totals: dict[str, tuple[float, int]] = {}
    for span in tracer.walk():
        if span.instant or span.end is None:
            continue
        tot, cnt = totals.get(span.name, (0.0, 0))
        totals[span.name] = (tot + span.duration, cnt + 1)
    return totals


def analyze_fleet(fleet: "FleetTelemetry") -> ImbalanceReport:
    """Imbalance report over every span name recorded by any rank."""
    per_rank: dict[int, dict[str, float]] = {}
    calls: dict[str, int] = {}
    for rt in fleet:
        totals = phase_totals(rt.tracer)
        per_rank[rt.rank] = {name: sec for name, (sec, _cnt) in totals.items()}
        for name, (_sec, cnt) in totals.items():
            calls[name] = calls.get(name, 0) + cnt
    report = analyze_totals(per_rank, n_ranks=fleet.size)
    for p in report.phases:
        p.calls = calls.get(p.name, 0)
    return report


def analyze_totals(
    per_rank: dict[int, dict[str, float]], n_ranks: int | None = None
) -> ImbalanceReport:
    """Imbalance report from plain ``{rank: {phase: seconds}}`` totals.

    Ranks missing a phase count as 0.0 seconds for it -- a rank that never
    entered a phase *is* the imbalance story, not a gap in the data.
    """
    ranks = sorted(per_rank)
    size = n_ranks if n_ranks is not None else (max(ranks) + 1 if ranks else 0)
    names = sorted({name for totals in per_rank.values() for name in totals})
    phases = [
        PhaseImbalance(
            name=name,
            per_rank={r: float(per_rank.get(r, {}).get(name, 0.0)) for r in range(size)},
        )
        for name in names
    ]
    critical_path = sum(p.max_seconds for p in phases)
    for p in phases:
        p.critical_path_share = p.max_seconds / critical_path if critical_path > 0 else math.nan
    phases.sort(key=lambda p: -p.max_seconds)
    return ImbalanceReport(phases=phases, n_ranks=size)
