"""Rank-merged Chrome traces: one ``pid`` lane per rank.

``chrome://tracing`` / Perfetto render separate ``pid`` values as separate
process lanes, which is exactly the Fig. 2-style multi-rank flame chart:
rank 0's phases stacked above rank 1's, stragglers visible as the lane
whose spans stick out.  :func:`merge_traces` builds that view from a live
:class:`~repro.observability.fleet.rank.FleetTelemetry`;
:func:`merge_trace_files` does the same from per-rank trace *files* (as
written by :func:`~repro.observability.export.write_chrome_trace`, one per
rank), for the ``python -m repro.observability merge`` CLI path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.observability.export import to_chrome_trace
from repro.observability.jsonio import dumps

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.fleet.rank import FleetTelemetry

__all__ = ["merge_traces", "write_merged_trace", "merge_trace_files"]


def merge_traces(fleet: "FleetTelemetry") -> dict:
    """One Chrome-trace dict with each rank's spans in its own ``pid`` lane.

    Rank tracers share a timeline origin (see
    :class:`~repro.observability.fleet.rank.FleetTelemetry`), so timestamps
    are directly comparable across lanes.  Each rank's gauges, histograms
    and counter samples (queue depth, CFL, anomaly z-scores) are emitted
    as Chrome-trace counter (``"C"``) events in that rank's lane -- they
    render as metric lane charts under the spans -- and the raw per-rank
    metrics snapshots additionally ride along in the trace ``metadata``.
    """
    events: list[dict] = []
    metrics_by_rank: dict[str, dict] = {}
    for rt in fleet:
        sub = to_chrome_trace(
            rt.tracer,
            metrics=rt.metrics if len(rt.metrics) else None,
            pid=rt.rank,
            tid=0,
            process_name=f"rank {rt.rank}",
        )
        events.extend(sub["traceEvents"])
        if len(rt.metrics):
            metrics_by_rank[str(rt.rank)] = rt.metrics.snapshot()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"n_ranks": fleet.size, "metrics": metrics_by_rank},
    }


def write_merged_trace(path, fleet: "FleetTelemetry") -> None:
    """Serialize :func:`merge_traces` to ``path`` (strict JSON)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(merge_traces(fleet)))


def merge_trace_files(paths: list[Path | str]) -> dict:
    """Merge per-rank Chrome-trace JSON files into one multi-lane trace.

    The i-th file becomes ``pid`` lane ``i`` (whatever pid it carried
    before); its metadata events are rewritten so the lane is labelled
    ``rank i``.  Single-tracer exports all carry ``pid 0``, so merging
    without the rewrite would collapse every rank into one lane.
    """
    events: list[dict] = []
    metrics_by_rank: dict[str, dict] = {}
    for rank, path in enumerate(paths):
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        for ev in data.get("traceEvents", []):
            ev = dict(ev)
            ev["pid"] = rank
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                ev["args"] = {"name": f"rank {rank}"}
            events.append(ev)
        rank_metrics = data.get("metadata", {}).get("metrics")
        if rank_metrics:
            metrics_by_rank[str(rank)] = rank_metrics
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"n_ranks": len(paths), "metrics": metrics_by_rank},
    }
