"""The Fig. 4 phase registry: canonical span and metric names.

The paper's wall-time breakdown (Fig. 4) partitions a time step into a
fixed set of phases; the observability layer reproduces that taxonomy as
span names, and every dashboard, exporter and regression comparison keys
on them.  A misspelled span name does not fail -- it silently opens a new
series that no tooling aggregates, which is how taxonomies rot.  This
module is therefore the single source of truth:

* instrumentation sites import the ``PHASE_*`` constants instead of
  retyping string literals;
* the ``span-hygiene`` rule of :mod:`repro.statcheck` statically checks
  every literal passed to ``Tracer.span`` / ``RegionTimers.region`` /
  ``MetricsRegistry.counter``-and-friends against this registry, so an
  unregistered name is caught at lint time, before it pollutes a trace.

Dynamic name families (one series per solver, per processor, ...) are
registered as *prefixes*: ``krylov.<solver>`` spans, ``solver.<name>.*``
metrics and so on.
"""

from __future__ import annotations

__all__ = [
    "PHASE_STEP",
    "PHASE_ADVECTION",
    "PHASE_PRESSURE",
    "PHASE_VELOCITY",
    "PHASE_TEMPERATURE",
    "PHASE_GATHER_SCATTER",
    "PHASE_STATISTICS",
    "PHASE_INSITU",
    "PHASES",
    "SPAN_PREFIXES",
    "METRIC_PREFIXES",
    "is_registered_span",
    "is_registered_metric",
]

# -- span taxonomy (Fig. 4) --------------------------------------------------

PHASE_STEP = "step"
PHASE_ADVECTION = "advection"
PHASE_PRESSURE = "pressure"
PHASE_VELOCITY = "velocity"
PHASE_TEMPERATURE = "temperature"
PHASE_GATHER_SCATTER = "gather_scatter"
PHASE_STATISTICS = "statistics"
PHASE_INSITU = "insitu"

#: Exact span names of the per-step phase breakdown, outermost first.
PHASES: tuple[str, ...] = (
    PHASE_STEP,
    PHASE_ADVECTION,
    PHASE_PRESSURE,
    PHASE_VELOCITY,
    PHASE_TEMPERATURE,
    PHASE_GATHER_SCATTER,
    PHASE_STATISTICS,
    PHASE_INSITU,
)

#: Registered dynamic span families: a span name is valid when it starts
#: with one of these prefixes (``krylov.pressure``, ``resilience.rollback``).
#: The ``fleet.`` family carries the per-rank spans of the distributed
#: telemetry layer (``fleet.gs.local``, ``fleet.cg.amul``); ``anomaly.``
#: are the instant events of the online detectors; ``flight.`` marks the
#: flight-recorder lifecycle (arm, dump, divergence).  The ``verify.``
#: family wraps the verification subsystem's convergence studies and
#: cross-backend checks (``verify.study``, ``verify.case``,
#: ``verify.equivalence``).  The ``chaos.`` family wraps the chaos-testing
#: harness's scenario runs (``chaos.campaign``, ``chaos.scenario``).
#: The ``cache.`` family marks operator-cache lifecycle events
#: (``cache.build``) and the ``autotune.`` family the startup kernel
#: autotuner (``autotune.sweep``, ``autotune.variant``,
#: ``autotune.fallback``, ``autotune.precision_fallback``).  The
#: ``profile.`` family carries the continuous profiler's roofline
#: attribution spans and model-drift events (``profile.attribution``,
#: ``profile.drift.<series>``); the ``campaign.`` family wraps the
#: cross-run ledger/observatory (``campaign.append``, ``campaign.report``).
#: The ``topo.`` family carries the topology-aware gather--scatter's
#: staged-exchange spans and per-rank DES timings (``topo.gs``,
#: ``topo.compute``), and the ``scaling.`` family wraps the simulated
#: strong-scaling campaign (``scaling.campaign``, ``scaling.point``).
SPAN_PREFIXES: tuple[str, ...] = (
    "krylov.",
    "resilience.",
    "checkpoint.",
    "fleet.",
    "anomaly.",
    "flight.",
    "verify.",
    "chaos.",
    "cache.",
    "autotune.",
    "profile.",
    "campaign.",
    "topo.",
    "scaling.",
)

# -- metric taxonomy ---------------------------------------------------------

#: Registered metric-name families, matching the exporters and the bench
#: trajectory.  Kept as prefixes because most series are parameterized by a
#: solver / processor / event name.
METRIC_PREFIXES: tuple[str, ...] = (
    "sim.",
    "gs.",
    "solver.",
    "insitu.",
    "comm.",
    "resilience.",
    "bench.",
    "fleet.",
    "anomaly.",
    "flight.",
    "verify.",
    "chaos.",
    "cache.",
    "autotune.",
    "profile.",
    "campaign.",
    "topo.",
    "scaling.",
)


def is_registered_span(name: str) -> bool:
    """True when ``name`` is a phase or belongs to a registered span family."""
    return name in PHASES or name.startswith(SPAN_PREFIXES)


def is_registered_metric(name: str) -> bool:
    """True when ``name`` belongs to a registered metric family."""
    return name.startswith(METRIC_PREFIXES)
