"""Bridges from existing measurement objects into the unified record.

The solver already measures a lot of itself -- ``SolverMonitor`` residual
histories, ``PipelineStats`` on the in-situ stream, ``TrafficStats`` on
the rank simulator, the resilience ``EventLog``.  These helpers fold all
of it into one :class:`~repro.observability.metrics.MetricsRegistry` /
:class:`~repro.observability.tracer.Tracer` pair so a single export call
carries the whole story of a run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.resilience.events import EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.simworld import TrafficStats
    from repro.insitu.pipeline import PipelineStats
    from repro.sem.gather_scatter import GatherScatter
    from repro.solvers.monitor import SolverMonitor

__all__ = [
    "TracedEventLog",
    "record_solver_monitor",
    "publish_pipeline_stats",
    "publish_traffic_stats",
    "publish_gather_scatter",
]


class TracedEventLog(EventLog):
    """An :class:`EventLog` that mirrors every event into a tracer.

    Hand one to the resilience runner instead of a plain log and faults,
    rollbacks and retries appear as instant events on the same timeline as
    the solver phases -- the trace shows *when* the run stumbled, not just
    that it did.
    """

    def __init__(self, tracer: Tracer = NULL_TRACER, metrics: MetricsRegistry | None = None) -> None:
        super().__init__()
        self.tracer = tracer
        self.metrics = metrics

    def record(self, kind, step=-1, time=0.0, detail="", **data):
        ev = super().record(kind, step=step, time=time, detail=detail, **data)
        self.tracer.event(
            f"resilience.{kind}", cat="resilience", step=step, sim_time=time, detail=detail
        )
        if self.metrics is not None:
            self.metrics.counter(f"resilience.{kind}").inc()
        return ev


def record_solver_monitor(
    mon: "SolverMonitor", metrics: MetricsRegistry, prefix: str = "solver"
) -> None:
    """Fold one linear solve's outcome into the registry."""
    name = mon.name or "unnamed"
    metrics.histogram(f"{prefix}.{name}.iterations").record(mon.iterations)
    metrics.counter(f"{prefix}.{name}.solves").inc()
    if not mon.converged:
        metrics.counter(f"{prefix}.{name}.unconverged").inc()
    if mon.residuals:
        metrics.gauge(f"{prefix}.{name}.final_residual").set(mon.final_residual)


def publish_pipeline_stats(
    stats: "PipelineStats", metrics: MetricsRegistry, prefix: str = "insitu"
) -> None:
    """Publish in-situ pipeline totals (items, bytes, latency, quarantines).

    Gauges, not counters: the stats object already carries lifetime totals,
    so publishing is idempotent snapshot-taking.
    """
    metrics.gauge(f"{prefix}.items").set(stats.items)
    metrics.gauge(f"{prefix}.bytes").set(stats.bytes_in)
    metrics.gauge(f"{prefix}.producer_wait_s").set(stats.producer_wait)
    metrics.gauge(f"{prefix}.dropped").set(stats.dropped)
    metrics.gauge(f"{prefix}.retries").set(stats.retries)
    metrics.gauge(f"{prefix}.quarantined").set(len(stats.quarantined))
    for name, seconds in stats.processor_time.items():
        metrics.gauge(f"{prefix}.processor.{name}.seconds").set(seconds)
    for name, fails in stats.processor_failures.items():
        metrics.gauge(f"{prefix}.processor.{name}.failures").set(fails)


def publish_traffic_stats(
    stats: "TrafficStats", metrics: MetricsRegistry, prefix: str = "comm"
) -> None:
    """Publish rank-simulator traffic totals (the SimWorld counters)."""
    for attr in ("allreduce_calls", "allreduce_bytes", "p2p_messages", "p2p_bytes", "barrier_calls"):
        metrics.gauge(f"{prefix}.{attr}").set(getattr(stats, attr))


def publish_gather_scatter(
    gs: "GatherScatter", metrics: MetricsRegistry, prefix: str = "gs"
) -> None:
    """Publish gather--scatter call/traffic totals for one operator."""
    metrics.gauge(f"{prefix}.calls").set(gs.calls)
    metrics.gauge(f"{prefix}.bytes_moved").set(gs.bytes_moved)
    metrics.gauge(f"{prefix}.seconds").set(gs.seconds)
    metrics.gauge(f"{prefix}.shared_dofs").set(gs.n_shared)
