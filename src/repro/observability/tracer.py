"""Hierarchical wall-clock span tracing.

The paper's performance evidence is observational: Fig. 2 is a kernel-level
execution trace, Fig. 4 a per-phase wall-time breakdown.  This module is
the instrumentation that produces the equivalent record for the Python
solver: nested :class:`Span` objects with wall time, counters and tags,
collected by a :class:`Tracer` and exported (``repro.observability.export``)
to Chrome-trace JSON, JSONL or a plain-text tree.

Instrumented code never pays for tracing it does not use: the module-level
:data:`NULL_TRACER` (a :class:`NullTracer`) implements the same interface
as pure no-ops, and every integration point in the solver defaults to it.
The hot kernels themselves (``ax_helmholtz``, gather--scatter) are *not*
wrapped per call -- spans sit at the phase/solve level, matching the MPI
region timers of the production code, so the overhead of a live tracer is
a handful of microseconds per time step.

Tracers are single-threaded by design (one per simulation loop, like one
per MPI rank); asynchronous components (the in-situ pipeline worker)
report through their own stats objects, which the bridge module folds into
the same record.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ContextManager, Iterator, Protocol

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "TracerProtocol"]

if TYPE_CHECKING:  # pragma: no cover

    class TracerProtocol(Protocol):
        """The tracer surface instrumented code relies on.

        Both :class:`Tracer` and :class:`NullTracer` satisfy it; annotate
        injected tracer attributes with this protocol so call sites stay
        typed without coupling to either implementation.
        """

        enabled: bool

        def span(self, name: str, **tags: Any) -> ContextManager[Any]: ...

        def event(self, name: str, **tags: Any) -> Any: ...

        def record_span(
            self,
            name: str,
            duration: float,
            counters: dict[str, float] | None = None,
            **tags: Any,
        ) -> Any: ...

        def sample(self, name: str, value: float, **tags: Any) -> Any: ...

        def add(self, counter: str, value: float = 1.0) -> None: ...

        def set_tag(self, key: str, value: Any) -> None: ...

else:  # pragma: no cover - runtime placeholder so isinstance-free imports work
    TracerProtocol = object


@dataclass
class Span:
    """One traced interval: a named region with children, tags and counters.

    ``start``/``end`` are seconds on the tracer's monotonic timeline
    (offsets from the tracer's construction).  ``tags`` are small
    descriptive values fixed at open time (step number, solver name);
    ``counters`` are numeric values accumulated while the span is open
    (iterations, bytes moved).
    """

    name: str
    start: float
    end: float | None = None
    parent: "Span | None" = field(default=None, repr=False)
    children: list["Span"] = field(default_factory=list)
    tags: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    instant: bool = False
    #: Counter samples (``Tracer.sample``) are instants that carry a numeric
    #: value meant to be rendered as a lane chart (Chrome-trace ``"C"``
    #: events), not as a point on the span timeline.
    sample: bool = False

    @property
    def duration(self) -> float:
        """Wall time in seconds (0.0 while open or for instant events)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def self_time(self) -> float:
        """Duration minus the time covered by child spans."""
        return self.duration - sum(c.duration for c in self.children if not c.instant)

    def add(self, counter: str, value: float = 1.0) -> None:
        """Accumulate a numeric counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0.0) + value

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for c in self.children:
            yield from c.walk()

    @property
    def depth(self) -> int:
        d, s = 0, self.parent
        while s is not None:
            d, s = d + 1, s.parent
        return d


class Tracer:
    """Collects a forest of nested :class:`Span` objects.

    Usage::

        tracer = Tracer()
        with tracer.span("step", step=3):
            with tracer.span("pressure"):
                tracer.add("iterations", mon.iterations)

    The clock is injectable for deterministic tests.  ``origin`` pins the
    timeline zero to an explicit clock reading so several tracers (one per
    simulated rank) share one timeline and their merged trace aligns; by
    default each tracer starts its own timeline at construction.
    """

    enabled = True

    def __init__(self, clock: Any = time.perf_counter, origin: float | None = None) -> None:
        self._clock = clock
        self._origin = clock() if origin is None else origin
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- span lifecycle ------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._origin

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Span]:
        """Open a child span of the current span (a root span at top level)."""
        sp = Span(name=name, start=self._now(), parent=self.current, tags=tags)
        if sp.parent is not None:
            sp.parent.children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            sp.end = self._now()
            self._stack.pop()

    def event(self, name: str, **tags: Any) -> Span:
        """Record a zero-duration instant event at the current position."""
        now = self._now()
        sp = Span(
            name=name, start=now, end=now, parent=self.current, tags=tags, instant=True
        )
        if sp.parent is not None:
            sp.parent.children.append(sp)
        else:
            self.roots.append(sp)
        return sp

    def sample(self, name: str, value: float, **tags: Any) -> Span:
        """Record one timestamped counter sample (a point of a metric lane).

        Samples are how time-varying signals -- CFL, in-situ queue depth,
        anomaly z-scores -- enter the trace *with their timestamps*, so the
        exporters can render them as Chrome-trace counter (``"C"``) lanes
        alongside the span flame chart instead of burying the final value
        in opaque metadata.  Sampling is cheap (one object per call) and
        only ever done at phase/step granularity.
        """
        now = self._now()
        sp = Span(
            name=name,
            start=now,
            end=now,
            parent=self.current,
            tags=tags,
            counters={"value": float(value)},
            instant=True,
            sample=True,
        )
        if sp.parent is not None:
            sp.parent.children.append(sp)
        else:
            self.roots.append(sp)
        return sp

    def record_span(
        self, name: str, duration: float, counters: dict[str, float] | None = None, **tags: Any
    ) -> Span:
        """Record an *aggregate* span ending now with a known duration.

        Used for phases whose time is accumulated across many tiny calls
        (gather--scatter) rather than measured as one contiguous interval;
        the span is placed so that it ends at the current time.
        """
        now = self._now()
        sp = Span(
            name=name,
            start=now - max(duration, 0.0),
            end=now,
            parent=self.current,
            tags=tags,
            counters=dict(counters or {}),
        )
        if sp.parent is not None:
            sp.parent.children.append(sp)
        else:
            self.roots.append(sp)
        return sp

    def add(self, counter: str, value: float = 1.0) -> None:
        """Accumulate a counter on the innermost open span (no-op at top level)."""
        if self._stack:
            self._stack[-1].add(counter, value)

    def set_tag(self, key: str, value: Any) -> None:
        """Set a tag on the innermost open span (no-op at top level)."""
        if self._stack:
            self._stack[-1].tags[key] = value

    # -- queries -------------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        for r in self.roots:
            yield from r.walk()

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.walk() if s.name == name]

    def total(self, name: str) -> float:
        """Summed duration over all spans with the given name."""
        return sum(s.duration for s in self.spans_named(name))

    def aggregate(self) -> dict[str, tuple[float, int]]:
        """``{path: (total seconds, count)}`` keyed by slash-joined span path."""
        agg: dict[str, tuple[float, int]] = {}

        def visit(span: Span, prefix: str) -> None:
            path = f"{prefix}/{span.name}" if prefix else span.name
            if not span.instant:
                tot, cnt = agg.get(path, (0.0, 0))
                agg[path] = (tot + span.duration, cnt + 1)
            for c in span.children:
                visit(c, path)

        for r in self.roots:
            visit(r, "")
        return agg

    def reset(self) -> None:
        """Drop all completed spans (open spans survive, reparented as roots)."""
        self.roots = list(self._stack[:1])
        for sp in self._stack:
            sp.children = [c for c in sp.children if c.end is None]


class _NullSpan:
    """Inert span handed out by :class:`NullTracer`; absorbs all calls."""

    __slots__ = ()
    duration = 0.0
    self_time = 0.0
    children: list["_NullSpan"] = []
    counters: dict[str, float] = {}
    tags: dict[str, Any] = {}
    name = ""

    def add(self, counter: str, value: float = 1.0) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: same interface as :class:`Tracer`, near-zero cost.

    This is the default everywhere instrumentation is threaded through the
    solver, keeping the uninstrumented hot path identical to the
    pre-observability code (one attribute check and a trivial context
    manager per *phase*, never per kernel call).
    """

    enabled = False
    roots: list[Span] = []
    current = None

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[_NullSpan]:
        yield _NULL_SPAN

    def event(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def sample(self, name: str, value: float, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self, name: str, duration: float, counters: dict[str, float] | None = None, **tags: Any
    ) -> _NullSpan:
        return _NULL_SPAN

    def add(self, counter: str, value: float = 1.0) -> None:
        pass

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def walk(self) -> Iterator[Span]:
        return iter(())

    def spans_named(self, name: str) -> list[Span]:
        return []

    def total(self, name: str) -> float:
        return 0.0

    def aggregate(self) -> dict[str, tuple[float, int]]:
        return {}

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()
