"""Static HTML dashboard for the campaign ledger.

One self-contained HTML file -- inline CSS, inline SVG sparklines, no
scripts, no external assets -- so CI can upload it as an artifact and it
renders anywhere a browser opens it.  The content mirrors the text
report: a run table, the Fig. 3 scaling block, the Fig. 4 phase shares
and a per-entry trend list with a sparkline of each series.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.observability.campaign.ledger import Ledger
from repro.observability.campaign.report import BREAKDOWN_PHASES
from repro.observability.campaign.trend import analyze_ledger

__all__ = ["sparkline_svg", "render_dashboard", "write_dashboard"]

_BADGE_COLORS = {
    "regression": "#c0392b",
    "improvement": "#27ae60",
    "stable": "#7f8c8d",
}

_STYLE = """
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif; margin: 2rem;
       color: #222; max-width: 70rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
th, td { padding: 0.25rem 0.6rem; border-bottom: 1px solid #ddd; text-align: right; }
th:first-child, td:first-child { text-align: left; }
.badge { display: inline-block; padding: 0.05rem 0.45rem; border-radius: 0.6rem;
         color: white; font-size: 0.75rem; }
.spark { vertical-align: middle; }
.muted { color: #888; font-size: 0.8rem; }
"""


def sparkline_svg(values: list[float], width: int = 120, height: int = 24) -> str:
    """Inline SVG polyline of a series, normalized to its own range."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    pts = []
    for i, v in enumerate(values):
        x = 2 + (width - 4) * (i / max(1, n - 1))
        y = height - 2 - (height - 4) * ((v - lo) / span)
        pts.append(f"{x:.1f},{y:.1f}")
    points = " ".join(pts)
    last_x, last_y = pts[-1].split(",")
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{points}" fill="none" stroke="#2980b9" stroke-width="1.5"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="2" fill="#2980b9"/></svg>'
    )


def _esc(text: object) -> str:
    return html.escape(str(text))


def render_dashboard(ledger: Ledger, last: int = 12) -> str:
    """The full dashboard as one HTML string."""
    runs = ledger.records()
    trends = analyze_ledger(ledger)
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>campaign observatory</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>Campaign observatory</h1>",
        f"<p class='muted'>ledger: {_esc(ledger.path)} &mdash; {len(runs)} runs</p>",
    ]

    # Run table (most recent last, like the ledger itself).
    parts.append("<h2>Runs</h2><table><tr><th>run</th><th>commit</th>"
                 "<th>timestamp</th><th>tier</th><th>entries</th><th>tuning</th></tr>")
    for run in runs[-last:]:
        parts.append(
            "<tr>"
            f"<td>{_esc(run.run_id)}</td><td>{_esc(run.git_sha or '-')}</td>"
            f"<td>{_esc(run.timestamp or '-')}</td><td>{_esc(run.tier)}</td>"
            f"<td>{len(run.entries)}</td><td>{_esc(run.tuning or '-')}</td></tr>"
        )
    parts.append("</table>")

    # Fig. 4 view: phase share of the step per run.
    step_runs = [r for r in runs[-last:] if r.seconds("step")]
    if step_runs:
        parts.append("<h2>Phase breakdown (Fig. 4 view, % of step)</h2>"
                     "<table><tr><th>phase</th>")
        parts.extend(f"<th>{_esc(r.git_sha or r.run_id)}</th>" for r in step_runs)
        parts.append("</tr>")
        for phase in BREAKDOWN_PHASES:
            parts.append(f"<tr><td>{_esc(phase)}</td>")
            for run in step_runs:
                ph, step = run.seconds(phase), run.seconds("step")
                cell = f"{100.0 * ph / step:.1f}%" if ph is not None and step else "-"
                parts.append(f"<td>{cell}</td>")
            parts.append("</tr>")
        parts.append("<tr><td>step [ms]</td>")
        parts.extend(f"<td>{r.seconds('step') * 1e3:.2f}</td>" for r in step_runs)
        parts.append("</tr></table>")

    # Fig. 3 view: one sparkline per world entry.
    world_entries = [e for e in ledger.entry_names() if e.startswith("world")]
    if world_entries:
        parts.append("<h2>Strong-scaling trend (Fig. 3 view)</h2><table>"
                     "<tr><th>entry</th><th>latest</th><th>trend</th><th>series</th></tr>")
        for entry in world_entries:
            series = [v for _, v in ledger.series(entry)]
            if not series:
                continue
            t = trends.get(entry)
            badge = ""
            if t is not None:
                color = _BADGE_COLORS[t.classification]
                badge = f"<span class='badge' style='background:{color}'>{t.classification}</span>"
            parts.append(
                f"<tr><td>{_esc(entry)}</td><td>{series[-1] * 1e3:.2f} ms</td>"
                f"<td>{badge}</td><td>{sparkline_svg(series)}</td></tr>"
            )
        parts.append("</table>")

    # All entries with sparklines and verdict badges.
    parts.append("<h2>Entry trends</h2><table><tr><th>entry</th><th>latest</th>"
                 "<th>vs median</th><th>verdict</th><th>series</th></tr>")
    order = {"regression": 0, "improvement": 1, "stable": 2}
    for t in sorted(trends.values(), key=lambda t: (order[t.classification], t.entry)):
        color = _BADGE_COLORS[t.classification]
        parts.append(
            f"<tr><td>{_esc(t.entry)}</td><td>{t.latest:.6g}</td>"
            f"<td>{t.relative_change:+.1%}</td>"
            f"<td><span class='badge' style='background:{color}'>{t.classification}</span></td>"
            f"<td>{sparkline_svg(list(t.values))}</td></tr>"
        )
    parts.append("</table></body></html>")
    return "".join(parts)


def write_dashboard(ledger: Ledger, path: "Path | str", last: int = 12) -> Path:
    """Render and write the dashboard; returns the output path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dashboard(ledger, last=last), encoding="utf-8")
    return out
