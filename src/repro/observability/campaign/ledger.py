"""The campaign ledger: an append-only JSONL record of every bench run.

A single ``BENCH_*.json`` answers "how fast is this commit"; a campaign
needs "how fast has this been *trending*" -- across commits, machines and
weeks.  The ledger is the cross-run memory: one JSONL line per run, each
line self-contained (schema version, run id, environment metadata
including the git SHA and the harness-recorded timestamp, every benchmark
entry's timings/traffic/memory figures, and a digest of the tuning table
that was active), appended and never rewritten.  Append-only means two
concurrent CI jobs cannot corrupt each other's history and a truncated
final line (a killed job) is skipped on read instead of poisoning the
file.

Timestamps are *injected* via the environment dict the perf harness
records -- nothing here reads a clock, keeping the package inside the
repository's determinism rule.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.observability.jsonio import dump_line, sanitize

__all__ = ["RunRecord", "Ledger", "tuning_digest"]

SCHEMA_VERSION = 1


def tuning_digest(tuning: dict | None) -> str | None:
    """Stable short digest of a tuning-table selection mapping."""
    if not tuning:
        return None
    canon = json.dumps(sanitize(tuning), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]


@dataclass
class RunRecord:
    """One benchmarked run: environment, entries, provenance."""

    run_id: str
    environment: dict = field(default_factory=dict)
    #: ``{entry name: {seconds, bytes?, calls?, memory?, ...}}`` -- the
    #: union of the harness's kernel and step results.
    entries: dict = field(default_factory=dict)
    tier: str = "smoke"
    tuning: str | None = None  # tuning-table digest
    tags: dict = field(default_factory=dict)

    @property
    def git_sha(self) -> str | None:
        sha = self.environment.get("git_sha")
        return str(sha) if sha else None

    @property
    def timestamp(self) -> str | None:
        ts = self.environment.get("timestamp")
        return str(ts) if ts else None

    def seconds(self, entry: str) -> float | None:
        rec = self.entries.get(entry)
        if rec is None:
            return None
        s = rec.get("seconds")
        return float(s) if s is not None else None

    @classmethod
    def from_bench(
        cls,
        *benches: dict,
        run_id: str | None = None,
        tuning: dict | None = None,
        tags: dict | None = None,
    ) -> "RunRecord":
        """Build a record from one or more parsed ``BENCH_*.json`` dicts.

        Entries from later files win on name collision.  The run id
        defaults to ``<git sha>-<timestamp>`` from the first bench's
        environment -- unique per harness invocation without this module
        reading a clock.
        """
        if not benches:
            raise ValueError("need at least one bench record")
        env = dict(benches[0].get("environment", {}))
        entries: dict = {}
        for bench in benches:
            for name, rec in bench.get("results", {}).items():
                entries[name] = dict(rec)
            overhead = bench.get("noop_tracer_overhead")
            if overhead is not None:
                entries.setdefault("noop_tracer_overhead", dict(overhead))
            overhead = bench.get("profiler_overhead")
            if overhead is not None:
                entries.setdefault("profiler_overhead", dict(overhead))
        if run_id is None:
            sha = env.get("git_sha") or "unknown"
            ts = env.get("timestamp") or f"n{len(entries)}"
            run_id = f"{sha}-{ts}"
        return cls(
            run_id=run_id,
            environment=env,
            entries=entries,
            tier=str(benches[0].get("tier", "smoke")),
            tuning=tuning_digest(tuning),
            tags=dict(tags or {}),
        )

    def as_record(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "run",
            "run_id": self.run_id,
            "tier": self.tier,
            "environment": self.environment,
            "entries": self.entries,
            "tuning": self.tuning,
            "tags": self.tags,
        }

    @classmethod
    def from_record(cls, rec: dict) -> "RunRecord":
        return cls(
            run_id=str(rec.get("run_id", "?")),
            environment=dict(rec.get("environment", {})),
            entries=dict(rec.get("entries", {})),
            tier=str(rec.get("tier", "smoke")),
            tuning=rec.get("tuning"),
            tags=dict(rec.get("tags", {})),
        )


class Ledger:
    """Append-only JSONL ledger with a query API.

    The file need not exist until the first :meth:`append`; reads of a
    missing ledger yield an empty history rather than an error, so report
    tooling degrades gracefully on a fresh checkout.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)

    def append(self, record: RunRecord) -> None:
        """Append one run (strict JSON, one line, parent dirs created)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(dump_line(record.as_record()))

    def _iter_lines(self) -> Iterator[dict]:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail of a killed writer
                if rec.get("kind") == "run":
                    yield rec

    def records(self) -> list[RunRecord]:
        """All runs, oldest first (file order)."""
        return [RunRecord.from_record(rec) for rec in self._iter_lines()]

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_lines())

    def query(
        self,
        entry: str | None = None,
        git_sha: str | None = None,
        tier: str | None = None,
        last: int | None = None,
    ) -> list[RunRecord]:
        """Filtered runs: by entry presence, git SHA, tier and/or recency."""
        runs = self.records()
        if entry is not None:
            runs = [r for r in runs if entry in r.entries]
        if git_sha is not None:
            runs = [r for r in runs if r.git_sha == git_sha]
        if tier is not None:
            runs = [r for r in runs if r.tier == tier]
        if last is not None and last >= 0:
            runs = runs[-last:] if last else []
        return runs

    def entry_names(self) -> list[str]:
        """Union of entry names across all runs, sorted."""
        names: set[str] = set()
        for run in self.records():
            names.update(run.entries)
        return sorted(names)

    def series(self, entry: str, key: str = "seconds") -> list[tuple[str, float]]:
        """``(run_id, value)`` pairs for one entry's numeric sub-key."""
        out: list[tuple[str, float]] = []
        for run in self.records():
            rec = run.entries.get(entry)
            if rec is None:
                continue
            value = rec.get(key)
            if isinstance(value, (int, float)) and value is not None:
                out.append((run.run_id, float(value)))
        return out
