"""``python -m repro.observability.campaign``: the observatory CLI.

Five subcommands over the append-only ledger:

* ``append`` -- fold one or more fresh ``BENCH_*.json`` records into the
  ledger as a single run (environment, entries, tuning digest);
* ``query`` -- filtered run listing (by entry, commit, tier, recency);
* ``trend`` -- per-entry trend verdicts (regression / improvement /
  stable, changepoints);
* ``report`` -- the full text report: Fig. 3-style scaling trend,
  Fig. 4-style phase-breakdown table, per-entry verdicts;
* ``dashboard`` -- the self-contained static HTML artifact.

Exit codes: 0 on success, 1 when ``trend --fail-on-regression`` finds a
regression, 2 on unreadable input.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.observability.campaign.dashboard import write_dashboard
from repro.observability.campaign.ledger import Ledger, RunRecord
from repro.observability.campaign.report import campaign_report
from repro.observability.campaign.trend import analyze_ledger

__all__ = ["main"]


def _load_json(path: "Path | str") -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _cmd_append(args: argparse.Namespace) -> int:
    try:
        benches = [_load_json(p) for p in args.bench]
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read bench record: {exc}")
        return 2
    tuning = None
    if args.tuning:
        try:
            tuning = _load_json(args.tuning)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read tuning table: {exc}")
            return 2
    record = RunRecord.from_bench(*benches, run_id=args.run_id, tuning=tuning)
    ledger = Ledger(args.ledger)
    ledger.append(record)
    print(
        f"appended run {record.run_id} ({len(record.entries)} entries, "
        f"commit {record.git_sha or '?'}) -> {ledger.path} ({len(ledger)} runs)"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    runs = ledger.query(
        entry=args.entry, git_sha=args.git_sha, tier=args.tier, last=args.last
    )
    if not runs:
        print("no matching runs")
        return 0
    for run in runs:
        line = (
            f"{run.run_id}  commit={run.git_sha or '?'}  tier={run.tier}  "
            f"entries={len(run.entries)}"
        )
        if args.entry:
            s = run.seconds(args.entry)
            line += f"  {args.entry}={s * 1e3:.3f} ms" if s is not None else ""
        print(line)
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    trends = analyze_ledger(ledger, key=args.key, threshold=args.threshold)
    if not trends:
        print("ledger is empty")
        return 0
    regressions = 0
    for entry in sorted(trends):
        t = trends[entry]
        print(t.describe())
        regressions += t.classification == "regression"
    if args.fail_on_regression and regressions:
        print(f"{regressions} entr{'y' if regressions == 1 else 'ies'} regressed")
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(campaign_report(Ledger(args.ledger), last=args.last, threshold=args.threshold))
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    out = write_dashboard(ledger, args.output, last=args.last)
    print(f"wrote {out} ({len(ledger)} runs)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.campaign",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("append", help="fold BENCH_*.json records into the ledger")
    p.add_argument("bench", nargs="+", help="BENCH_*.json files of one run")
    p.add_argument("--ledger", required=True, help="ledger JSONL path")
    p.add_argument("--run-id", default=None, help="override the derived run id")
    p.add_argument("--tuning", default=None, help="tuning_table.json to digest")
    p.set_defaults(func=_cmd_append)

    p = sub.add_parser("query", help="list runs, optionally filtered")
    p.add_argument("--ledger", required=True)
    p.add_argument("--entry", default=None, help="only runs carrying this entry")
    p.add_argument("--git-sha", default=None, help="only runs from this commit")
    p.add_argument("--tier", default=None)
    p.add_argument("--last", type=int, default=None, help="only the N most recent")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("trend", help="per-entry trend verdicts")
    p.add_argument("--ledger", required=True)
    p.add_argument("--key", default="seconds", help="entry sub-key to trend (default seconds)")
    p.add_argument("--threshold", type=float, default=0.15)
    p.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any entry's latest run regressed",
    )
    p.set_defaults(func=_cmd_trend)

    p = sub.add_parser("report", help="full text report (Fig. 3 + Fig. 4 views)")
    p.add_argument("--ledger", required=True)
    p.add_argument("--last", type=int, default=8, help="runs shown per table")
    p.add_argument("--threshold", type=float, default=0.15)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("dashboard", help="write the static HTML dashboard")
    p.add_argument("--ledger", required=True)
    p.add_argument("--output", default="campaign_dashboard.html")
    p.add_argument("--last", type=int, default=12)
    p.set_defaults(func=_cmd_dashboard)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # pragma: no cover - `| head` closed the pipe
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
