"""Campaign reports: cross-run Fig. 3 / Fig. 4 views of the ledger.

The paper's two performance figures are a strong-scaling curve (Fig. 3)
and a per-phase wall-time breakdown (Fig. 4); a campaign needs the same
two views *with time as an extra axis*: how the phase shares and the
distributed-solve timings moved across the recorded runs.  These renderers
are plain text -- reviewable in a terminal or a CI log -- and the HTML
dashboard builds on the same data.
"""

from __future__ import annotations

import re

from repro.observability.campaign.ledger import Ledger, RunRecord
from repro.observability.campaign.trend import EntryTrend, analyze_ledger

__all__ = [
    "phase_breakdown_table",
    "scaling_section",
    "trend_section",
    "campaign_report",
]

#: The Fig. 4 taxonomy, in report order.
BREAKDOWN_PHASES: tuple[str, ...] = (
    "pressure",
    "velocity",
    "temperature",
    "advection",
    "gather_scatter",
)

_WORLD_ENTRY = re.compile(r"^world(\d+)_")


def _run_label(run: RunRecord, index: int) -> str:
    """Short column label: the git SHA when known, else a run ordinal."""
    return run.git_sha or f"run{index + 1}"


def phase_breakdown_table(ledger: Ledger, last: int = 8) -> str:
    """Fig. 4-style phase-breakdown trend: phase share of the step per run.

    Columns are the most recent ``last`` runs (oldest first), rows the
    Fig. 4 phases; each cell is that phase's percentage of the run's
    measured step time, with the absolute step time in the footer row.
    Reading along a row shows a phase's share drifting across the
    campaign -- the longitudinal version of the paper's single pie chart.
    """
    runs = [r for r in ledger.query(entry="step", last=last) if r.seconds("step")]
    if not runs:
        return "phase breakdown: no runs with a measured step entry"
    labels = [_run_label(r, i) for i, r in enumerate(runs)]
    w = max(8, *(len(lab) for lab in labels))
    header = f"  {'phase':<16s} " + " ".join(f"{lab:>{w}s}" for lab in labels)
    lines = [
        f"phase breakdown across {len(runs)} runs (% of step, Fig. 4 view):",
        header,
        "  " + "-" * (len(header) - 2),
    ]
    for phase in BREAKDOWN_PHASES:
        cells = []
        for run in runs:
            ph, step = run.seconds(phase), run.seconds("step")
            cells.append(
                f"{100.0 * ph / step:>{w - 1}.1f}%" if ph is not None and step else f"{'-':>{w}s}"
            )
        lines.append(f"  {phase:<16s} " + " ".join(cells))
    step_cells = " ".join(f"{run.seconds('step') * 1e3:>{w - 3}.2f} ms" for run in runs)
    lines.append(f"  {'step [ms]':<16s} {step_cells}")
    return "\n".join(lines)


def scaling_section(ledger: Ledger, last: int = 8) -> str:
    """Fig. 3-style scaling view: distributed-solve time per rank count, per run.

    Rows are the ``world<N>_*`` entries (the executable stand-ins for the
    strong-scaling step), columns the recent runs; cells carry the solve
    seconds.  A second block reports the per-run iteration counts when
    recorded, since a timing shift with constant iterations means silicon
    or code, while shifting iterations means the algorithm changed.
    """
    entries = [e for e in ledger.entry_names() if _WORLD_ENTRY.match(e)]
    if not entries:
        return "scaling: no world*_ entries recorded yet"
    entries.sort(key=lambda e: int(_WORLD_ENTRY.match(e).group(1)))
    runs = [r for r in ledger.query(last=last) if any(e in r.entries for e in entries)]
    if not runs:
        return "scaling: no runs carry world*_ entries"
    labels = [_run_label(r, i) for i, r in enumerate(runs)]
    w = max(10, *(len(lab) for lab in labels))
    header = f"  {'entry':<18s} {'ranks':>5s} " + " ".join(f"{lab:>{w}s}" for lab in labels)
    lines = [
        f"strong-scaling trend across {len(runs)} runs (Fig. 3 view, seconds/solve):",
        header,
        "  " + "-" * (len(header) - 2),
    ]
    for entry in entries:
        ranks = ""
        for run in runs:
            rec = run.entries.get(entry)
            if rec and rec.get("ranks"):
                ranks = str(rec["ranks"])
                break
        cells = []
        for run in runs:
            s = run.seconds(entry)
            cells.append(f"{s * 1e3:>{w - 3}.2f} ms" if s is not None else f"{'-':>{w}s}")
        lines.append(f"  {entry:<18s} {ranks:>5s} " + " ".join(cells))
    iter_rows = []
    for entry in entries:
        cells = []
        any_iters = False
        for run in runs:
            rec = run.entries.get(entry) or {}
            iters = rec.get("iterations")
            any_iters = any_iters or iters is not None
            cells.append(f"{iters:>{w}d}" if isinstance(iters, int) else f"{'-':>{w}s}")
        if any_iters:
            iter_rows.append(f"  {entry:<18s} {'iters':>5s} " + " ".join(cells))
    if iter_rows:
        lines.extend(iter_rows)
    return "\n".join(lines)


def trend_section(trends: dict[str, EntryTrend]) -> str:
    """Per-entry verdicts, regressions first."""
    if not trends:
        return "trends: ledger is empty"
    order = {"regression": 0, "improvement": 1, "stable": 2}
    ranked = sorted(trends.values(), key=lambda t: (order[t.classification], t.entry))
    lines = ["per-entry trends (latest vs prior-history median):"]
    for t in ranked:
        lines.append("  " + t.describe())
    n_reg = sum(t.classification == "regression" for t in ranked)
    n_imp = sum(t.classification == "improvement" for t in ranked)
    lines.append(
        f"  {len(ranked)} entries: {n_reg} regression(s), {n_imp} improvement(s), "
        f"{len(ranked) - n_reg - n_imp} stable"
    )
    return "\n".join(lines)


def campaign_report(ledger: Ledger, last: int = 8, threshold: float = 0.15) -> str:
    """The full text report: header, Fig. 3 view, Fig. 4 view, trends."""
    runs = ledger.records()
    if not runs:
        return f"campaign ledger {ledger.path}: empty"
    shas = [r.git_sha for r in runs if r.git_sha]
    span = f"{runs[0].timestamp or '?'} .. {runs[-1].timestamp or '?'}"
    lines = [
        f"campaign ledger {ledger.path}: {len(runs)} runs, "
        f"{len(set(shas))} distinct commit(s), {span}",
        "",
        scaling_section(ledger, last=last),
        "",
        phase_breakdown_table(ledger, last=last),
        "",
        trend_section(analyze_ledger(ledger, threshold=threshold)),
    ]
    return "\n".join(lines)
