"""Trend analytics over ledger series: medians, changepoints, verdicts.

Single-run comparisons (``compare_bench``) answer "did this run regress
against one baseline"; trend analytics answer the campaign questions:
is an entry drifting, did it step-change at some commit, is the latest
run an outlier or the new normal.  Everything is closed-form order
statistics -- robust to the heavy-tailed noise of shared CI runners,
deterministic, and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "rolling_median",
    "median",
    "changepoint",
    "classify",
    "EntryTrend",
    "analyze_series",
    "analyze_ledger",
]


def median(values: list[float]) -> float:
    """Plain median (mean of the middle pair for even lengths)."""
    if not values:
        raise ValueError("median of an empty series")
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def rolling_median(values: list[float], window: int = 5) -> list[float]:
    """Trailing-window median per point (window clipped at the start)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    return [median(values[max(0, i + 1 - window) : i + 1]) for i in range(len(values))]


def changepoint(values: list[float], min_shift: float = 0.15) -> tuple[int, float] | None:
    """Most likely level-shift split of a series, if any.

    Scans every split position keeping at least two points on each side
    and returns ``(index, relative shift)`` for the split maximizing the
    relative difference of the two sides' medians -- ``index`` is the
    first point of the *new* level.  Returns ``None`` when the series is
    too short or the best shift is below ``min_shift`` (15 % by default,
    comfortably above same-machine bench noise).
    """
    n = len(values)
    if n < 4:
        return None
    best: tuple[int, float] | None = None
    best_key: tuple[float, int] | None = None
    for i in range(2, n - 1):
        before = median(values[:i])
        after = median(values[i:])
        if before <= 0.0:
            continue
        shift = (after - before) / before
        # Ties on the shift magnitude (coarse medians make them common)
        # go to the most balanced split -- for a clean level step that is
        # the actual step position.
        key = (abs(shift), min(i, n - i))
        if best_key is None or key > best_key:
            best, best_key = (i, shift), key
    if best is None or abs(best[1]) < min_shift:
        return None
    return best


def classify(values: list[float], threshold: float = 0.15) -> str:
    """Verdict for the latest run against the prior history's median.

    ``regression`` when the last value exceeds the median of everything
    before it by more than ``threshold`` (higher = slower for timing
    series), ``improvement`` when below by the same margin, ``stable``
    otherwise.  Series with fewer than three points are ``stable`` --
    there is no history to trend against.
    """
    if len(values) < 3:
        return "stable"
    baseline = median(values[:-1])
    if baseline <= 0.0:
        return "stable"
    rel = (values[-1] - baseline) / baseline
    if rel > threshold:
        return "regression"
    if rel < -threshold:
        return "improvement"
    return "stable"


@dataclass(frozen=True)
class EntryTrend:
    """Trend summary of one benchmark entry across the campaign."""

    entry: str
    n_runs: int
    values: tuple[float, ...]
    latest: float
    baseline_median: float
    relative_change: float  # latest vs prior-history median
    classification: str  # regression | improvement | stable
    changepoint_index: int | None = None
    changepoint_shift: float | None = None

    def describe(self) -> str:
        arrow = {"regression": "+", "improvement": "-", "stable": "~"}[self.classification]
        line = (
            f"{self.entry}: {self.classification} "
            f"({arrow}{abs(self.relative_change):.1%} vs median of {self.n_runs - 1} prior runs)"
        )
        if self.changepoint_index is not None:
            line += (
                f"; level shift {self.changepoint_shift:+.1%} "
                f"at run {self.changepoint_index + 1}/{self.n_runs}"
            )
        return line


def analyze_series(entry: str, values: list[float], threshold: float = 0.15) -> EntryTrend:
    """Full trend summary of one series (needs at least one point)."""
    if not values:
        raise ValueError(f"{entry}: empty series")
    baseline = median(values[:-1]) if len(values) > 1 else values[-1]
    rel = (values[-1] - baseline) / baseline if baseline > 0 else 0.0
    cp = changepoint(values)
    return EntryTrend(
        entry=entry,
        n_runs=len(values),
        values=tuple(values),
        latest=values[-1],
        baseline_median=baseline,
        relative_change=rel,
        classification=classify(values, threshold=threshold),
        changepoint_index=cp[0] if cp else None,
        changepoint_shift=cp[1] if cp else None,
    )


def analyze_ledger(ledger, key: str = "seconds", threshold: float = 0.15) -> dict[str, EntryTrend]:
    """Per-entry trends over every entry a ledger has ever recorded."""
    out: dict[str, EntryTrend] = {}
    for entry in ledger.entry_names():
        series = [v for _, v in ledger.series(entry, key=key)]
        if series:
            out[entry] = analyze_series(entry, series, threshold=threshold)
    return out
