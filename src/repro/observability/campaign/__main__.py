"""Entry point for ``python -m repro.observability.campaign``."""

from repro.observability.campaign.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
