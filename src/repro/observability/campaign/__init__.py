"""The cross-run campaign observatory.

Where :mod:`repro.observability.profile` watches one run against the
performance model, this package watches the *campaign*: every perf-harness
invocation appends one line to an append-only JSONL ledger, and the query
/ trend / report layers answer how the numbers moved across commits --
the longitudinal counterparts of the paper's Fig. 3 (scaling) and Fig. 4
(phase breakdown):

* :mod:`~repro.observability.campaign.ledger` -- :class:`RunRecord` and
  the append-only :class:`Ledger` with its query API;
* :mod:`~repro.observability.campaign.trend` -- rolling medians,
  changepoint detection, per-entry regression/improvement verdicts;
* :mod:`~repro.observability.campaign.report` -- the text report
  (Fig. 3-style scaling trend, Fig. 4-style phase-breakdown table);
* :mod:`~repro.observability.campaign.dashboard` -- the self-contained
  static HTML artifact;
* ``python -m repro.observability.campaign`` -- the
  ``append``/``query``/``trend``/``report``/``dashboard`` CLI.
"""

from repro.observability.campaign.dashboard import (
    render_dashboard,
    sparkline_svg,
    write_dashboard,
)
from repro.observability.campaign.ledger import Ledger, RunRecord, tuning_digest
from repro.observability.campaign.report import (
    campaign_report,
    phase_breakdown_table,
    scaling_section,
    trend_section,
)
from repro.observability.campaign.trend import (
    EntryTrend,
    analyze_ledger,
    analyze_series,
    changepoint,
    classify,
    median,
    rolling_median,
)

__all__ = [
    "Ledger",
    "RunRecord",
    "tuning_digest",
    "EntryTrend",
    "median",
    "rolling_median",
    "changepoint",
    "classify",
    "analyze_series",
    "analyze_ledger",
    "campaign_report",
    "phase_breakdown_table",
    "scaling_section",
    "trend_section",
    "render_dashboard",
    "sparkline_svg",
    "write_dashboard",
]
