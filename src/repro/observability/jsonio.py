"""Strict-JSON serialization of telemetry records.

Python's ``json`` module happily emits ``NaN`` / ``Infinity`` literals,
which are *not* JSON: a gauge that saw a NaN (an empty histogram's mean,
a diverging residual) silently produces a file ``jq``, browsers and most
other parsers reject.  Every exporter in the observability stack therefore
funnels its payload through :func:`sanitize` before writing:

* ``NaN`` becomes ``None`` (JSON ``null``) -- the value for "no data",
  matching how dashboards want to render a gap;
* ``+inf`` / ``-inf`` become the strings ``"Infinity"`` / ``"-Infinity"``
  -- unlike NaN they carry sign information worth keeping, and a string
  survives a strict round trip;
* numpy scalars are coerced to their Python equivalents so a record built
  from array arithmetic serializes like one built from floats.

:func:`dumps` / :func:`dump_line` apply the policy and serialize with
``allow_nan=False``, so a non-finite value that slipped past the
sanitizer fails loudly instead of producing invalid output.
"""

from __future__ import annotations

import json
import math
from typing import Any

__all__ = ["sanitize", "dumps", "dump_line", "POS_INF", "NEG_INF"]

#: Strict-JSON stand-ins for the signed infinities.
POS_INF = "Infinity"
NEG_INF = "-Infinity"


def sanitize(value: Any) -> Any:
    """Recursively convert ``value`` into a strict-JSON-serializable tree.

    Dict keys are coerced to ``str``; tuples and sets become lists.  Any
    leaf that is not a JSON primitive after numeric coercion is replaced
    by its ``repr`` -- telemetry must serialize, never raise.
    """
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return POS_INF if value > 0 else NEG_INF
        return value
    if isinstance(value, dict):
        return {str(k): sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [sanitize(v) for v in value]
    # numpy scalars (and anything else float-like or int-like).
    for caster in (int, float):
        try:
            return sanitize(caster(value))
        except (TypeError, ValueError, OverflowError):
            continue
    return repr(value)


def dumps(value: Any, **kwargs: Any) -> str:
    """``json.dumps`` of the sanitized tree, strict (``allow_nan=False``)."""
    return json.dumps(sanitize(value), allow_nan=False, **kwargs)


def dump_line(value: Any) -> str:
    """One compact JSONL line (newline included) of the sanitized tree."""
    return dumps(value, separators=(",", ":")) + "\n"
