"""Unified observability: trace spans, metrics, exporters, bridges.

The measured counterpart of the paper's performance narrative: nested
span traces (Fig. 2's kernel trace), per-phase wall-time breakdowns
(Fig. 4) and the counter/gauge/histogram registry behind the bench
trajectory.  Everything defaults to a no-op tracer so uninstrumented runs
pay (almost) nothing; see README "Observability".
"""

from repro.observability.export import (
    span_records,
    text_report,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.phases import (
    METRIC_PREFIXES,
    PHASES,
    SPAN_PREFIXES,
    is_registered_metric,
    is_registered_span,
)
from repro.observability.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.observability.fleet import (
    Anomaly,
    AnomalyMonitor,
    EwmaDetector,
    FleetTelemetry,
    FlightBundle,
    FlightRecorder,
    ImbalanceReport,
    RankTracer,
    analyze_fleet,
    analyze_totals,
    merge_trace_files,
    merge_traces,
)

# The bridge module reaches into repro.resilience (whose package __init__
# reaches back into repro.core); importing it eagerly here would close an
# import cycle through core.timers.  PEP 562 lazy attribute access breaks
# it: the bridge loads on first use, when everything is initialized.
# The profile/campaign subpackages pull repro.perfmodel and repro.gpu and
# are lazy for the same reason: this package is imported from inside
# repro.core's module initialization.
_BRIDGE_EXPORTS = {
    "TracedEventLog",
    "record_solver_monitor",
    "publish_pipeline_stats",
    "publish_traffic_stats",
    "publish_gather_scatter",
}

_PROFILE_EXPORTS = {
    "ContinuousProfiler",
    "ModelDriftDetector",
    "DriftEvent",
    "KernelSample",
    "Attribution",
    "kernel_roofline_report",
    "profiler_report",
}

_CAMPAIGN_EXPORTS = {
    "Ledger",
    "RunRecord",
    "campaign_report",
    "analyze_ledger",
    "write_dashboard",
}


def __getattr__(name: str):
    if name in _BRIDGE_EXPORTS:
        from repro.observability import bridge

        return getattr(bridge, name)
    if name in _PROFILE_EXPORTS:
        from repro.observability import profile

        return getattr(profile, name)
    if name in _CAMPAIGN_EXPORTS:
        from repro.observability import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PHASES",
    "SPAN_PREFIXES",
    "METRIC_PREFIXES",
    "is_registered_span",
    "is_registered_metric",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "to_chrome_trace",
    "write_chrome_trace",
    "span_records",
    "write_jsonl",
    "text_report",
    "TracedEventLog",
    "record_solver_monitor",
    "publish_pipeline_stats",
    "publish_traffic_stats",
    "publish_gather_scatter",
    "FleetTelemetry",
    "RankTracer",
    "merge_traces",
    "merge_trace_files",
    "ImbalanceReport",
    "analyze_fleet",
    "analyze_totals",
    "FlightRecorder",
    "FlightBundle",
    "Anomaly",
    "AnomalyMonitor",
    "EwmaDetector",
    "ContinuousProfiler",
    "ModelDriftDetector",
    "DriftEvent",
    "KernelSample",
    "Attribution",
    "kernel_roofline_report",
    "profiler_report",
    "Ledger",
    "RunRecord",
    "campaign_report",
    "analyze_ledger",
    "write_dashboard",
]
