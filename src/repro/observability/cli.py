"""``python -m repro.observability``: inspect traces and flight bundles.

Three subcommands close the loop between a run's on-disk record and a
human:

* ``merge`` -- combine per-rank Chrome-trace JSON files (one per rank, as
  written by :func:`~repro.observability.export.write_chrome_trace`) into
  a single multi-lane trace, one ``pid`` per rank;
* ``report`` -- print the Fig. 4-style per-rank/per-phase wall-time table
  (max/mean/min, straggler rank, critical-path share, parallel-efficiency
  estimate) from a merged trace;
* ``flight`` -- parse a flight-recorder bundle back and print its digest
  (window of steps, last frame, solver monitors, event tail).

Exit codes: 0 on success, 2 on unreadable/invalid input.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.observability.fleet.flight import FlightBundle
from repro.observability.fleet.imbalance import analyze_totals
from repro.observability.fleet.merge import merge_trace_files

__all__ = ["main", "trace_phase_totals"]


def trace_phase_totals(trace: dict) -> dict[int, dict[str, float]]:
    """``{pid: {span name: seconds}}`` reconstructed from a Chrome trace.

    Only complete (``"X"``) events carry duration; instants and metadata
    are skipped.  This is the inverse of the exporters far enough for the
    imbalance analytics -- lane identity (pid) stands in for the rank.
    """
    totals: dict[int, dict[str, float]] = {}
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        pid = int(ev.get("pid", 0))
        name = str(ev.get("name", ""))
        per = totals.setdefault(pid, {})
        per[name] = per.get(name, 0.0) + float(ev.get("dur", 0.0)) * 1e-6
    return totals


def _cmd_merge(args: argparse.Namespace) -> int:
    try:
        merged = merge_trace_files(args.traces)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot merge: {exc}")
        return 2
    out = Path(args.output)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(merged, fh)
    n_events = len(merged["traceEvents"])
    print(f"wrote {out}: {len(args.traces)} rank lanes, {n_events} events")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        trace = json.loads(Path(args.trace).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace: {exc}")
        return 2
    totals = trace_phase_totals(trace)
    if not totals:
        print("(no complete spans in the trace)")
        return 0
    report = analyze_totals(totals)
    print(report.render())
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    try:
        bundle = FlightBundle.load(args.bundle)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: cannot load flight bundle: {exc}")
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "header": bundle.header,
                    "frames": [f.as_record() for f in bundle.frames],
                    "events": bundle.events,
                }
            )
        )
    else:
        print(bundle.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge", help="merge per-rank Chrome traces into one")
    p_merge.add_argument("traces", nargs="+", help="per-rank trace JSON files, rank order")
    p_merge.add_argument("-o", "--output", default="merged_trace.json")
    p_merge.set_defaults(func=_cmd_merge)

    p_report = sub.add_parser("report", help="per-rank per-phase imbalance table")
    p_report.add_argument("trace", help="merged Chrome-trace JSON")
    p_report.set_defaults(func=_cmd_report)

    p_flight = sub.add_parser("flight", help="inspect a flight-recorder bundle")
    p_flight.add_argument("bundle", help="flight bundle (.jsonl)")
    p_flight.add_argument("--json", action="store_true", help="emit parsed JSON")
    p_flight.set_defaults(func=_cmd_flight)

    args = parser.parse_args(argv)
    return int(args.func(args))
