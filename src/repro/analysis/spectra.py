"""Energy spectra and turbulence microscales.

Spectra require a uniform sampling of the SEM field;
:func:`sample_uniform_box` evaluates the spectral-element interpolant of a
*uniform* box mesh on a regular grid (exact polynomial evaluation per
element, not nearest-node lookup).  The shell-averaged spectrum then comes
from a plain FFT.

The microscale estimates use the exact dissipation relations of RBC in
free-fall units: ``eps_u = (Nu - 1) / sqrt(Ra Pr)`` and the resulting
Kolmogorov scale -- the basis of the paper's "H/eta ~ Ra^{3/8}" resolution
argument.
"""

from __future__ import annotations

import numpy as np

from repro.sem.basis import lagrange_interpolation_matrix
from repro.sem.space import FunctionSpace

__all__ = ["sample_uniform_box", "energy_spectrum", "kolmogorov_scale", "resolution_ratio"]


def sample_uniform_box(
    space: FunctionSpace,
    field: np.ndarray,
    n: tuple[int, int, int],
    box_n: tuple[int, int, int],
    lengths: tuple[float, float, float] = (1.0, 1.0, 1.0),
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> np.ndarray:
    """Evaluate a field of a *uniform* box mesh on a regular grid.

    Parameters
    ----------
    space, field:
        The SEM space (built from ``box_mesh(box_n, lengths, origin)`` with
        zero grading) and a nodal field on it.
    n:
        Output grid resolution per direction; points are cell centers (so
        periodic FFTs need no endpoint duplication).
    box_n:
        The element counts the mesh was generated with.
    """
    nx, ny, nz = n
    ex, ey, ez = box_n
    lx = space.lx
    out = np.empty((nz, ny, nx))

    axes = []
    for npts, ne, length, orig in (
        (nx, ex, lengths[0], origin[0]),
        (ny, ey, lengths[1], origin[1]),
        (nz, ez, lengths[2], origin[2]),
    ):
        # Cell-centred sample coordinates and their (element, reference
        # coordinate) decomposition.
        coords = orig + (np.arange(npts) + 0.5) / npts * length
        h = length / ne
        elem = np.minimum(((coords - orig) / h).astype(int), ne - 1)
        ref = 2.0 * (coords - orig - elem * h) / h - 1.0
        axes.append((elem, ref))

    # Per-direction interpolation matrices for each sample point.
    interp = [lagrange_interpolation_matrix(ref, lx) for _, ref in axes]

    # Element index layout of box_mesh: e = (k * ny_e + j) * nx_e + i.
    ex_idx, ey_idx, ez_idx = axes[0][0], axes[1][0], axes[2][0]
    for kz in range(nz):
        wz = interp[2][kz]  # (lx,)
        for jy in range(ny):
            wy = interp[1][jy]
            e_base = (ez_idx[kz] * ey + ey_idx[jy]) * ex
            # Contract z and y first; (element-in-row, lx) values remain.
            plane = np.einsum("k,j,ekji->ei", wz, wy, field[e_base : e_base + ex])
            out[kz, jy, :] = np.sum(interp[0] * plane[ex_idx], axis=1)
    return out


def energy_spectrum(sampled: np.ndarray, length: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """Shell-averaged 3-D energy spectrum of a uniformly sampled field.

    Returns ``(k, E(k))`` with wavenumbers in units of ``2 pi / length``.
    """
    n = sampled.shape[0]
    if sampled.shape != (n, n, n):
        raise ValueError("energy_spectrum expects a cubic sample")
    uh = np.fft.fftn(sampled) / sampled.size
    e3 = 0.5 * np.abs(uh) ** 2
    freqs = np.fft.fftfreq(n, d=1.0 / n)
    kx, ky, kz = np.meshgrid(freqs, freqs, freqs, indexing="ij")
    kmag = np.sqrt(kx**2 + ky**2 + kz**2)
    kbins = np.arange(0.5, n // 2, 1.0)
    which = np.digitize(kmag.reshape(-1), kbins)
    ek = np.bincount(which, weights=e3.reshape(-1), minlength=len(kbins) + 1)[1 : len(kbins)]
    k = 0.5 * (kbins[:-1] + kbins[1:])
    return k, ek


def kolmogorov_scale(rayleigh: float, prandtl: float, nusselt: float) -> float:
    """Kolmogorov length ``eta / H`` from the exact dissipation relation.

    ``eps_u = (Nu - 1) / sqrt(Ra Pr)`` (free-fall units), ``nu =
    sqrt(Pr/Ra)``, ``eta = (nu^3 / eps)^{1/4}``.
    """
    if nusselt <= 1.0:
        return float("inf")
    nu_visc = np.sqrt(prandtl / rayleigh)
    eps = (nusselt - 1.0) / np.sqrt(rayleigh * prandtl)
    return float((nu_visc**3 / eps) ** 0.25)


def resolution_ratio(rayleigh: float, prandtl: float, nusselt: float) -> float:
    """``H / eta`` -- the grid-point count per direction DNS needs.

    With ``Nu ~ Ra^gamma`` this grows like ``Ra^{(1+gamma)/4}``: about
    ``Ra^{1/3}`` on the classical branch and exactly the ``Ra^{3/8}``
    quoted in Section 4.1 once the ultimate ``gamma = 1/2`` is reached --
    the paper's resolution argument anticipates the ultimate regime.
    """
    return 1.0 / kolmogorov_scale(rayleigh, prandtl, nusselt)
