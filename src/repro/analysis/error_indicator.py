"""Per-element spectral error indicators (resolution monitoring).

Spectral-element practitioners estimate local resolution from the decay of
the modal (Legendre) spectrum of each element: a well-resolved element
shows exponential decay toward the highest modes, an under-resolved one a
flat or rising tail.  Neko/Nek5000 use this both for run-time resolution
monitoring and for adaptive filtering decisions; the paper's mesh design
discussion ("adequate refinement in the near-wall regions ... while still
capturing all relevant dynamics") is exactly what this diagnostic checks.

The indicator follows Mavriplis' classic estimator: fit ``|a_k| ~ C
exp(-sigma k)`` to the tail of the per-direction modal amplitudes and
report both the estimated truncation-error fraction and the decay rate.
"""

from __future__ import annotations

import numpy as np

from repro.compression.transform import to_modal

__all__ = ["spectral_error_indicator", "underresolved_elements"]


def _directional_amplitudes(uh: np.ndarray) -> np.ndarray:
    """RMS modal amplitude per 1-D mode index, per element: ``(nelv, 3, lx)``.

    Direction ``d``'s amplitude at index ``m`` aggregates all tensor modes
    whose ``d``-index equals ``m`` (the standard collapse onto 1-D spectra).
    """
    nelv, lz, ly, lxm = uh.shape
    sq = uh**2
    a = np.empty((nelv, 3, lxm))
    a[:, 0] = np.sqrt(sq.sum(axis=(1, 2)) / (lz * ly))  # r-direction (i)
    a[:, 1] = np.sqrt(sq.sum(axis=(1, 3)) / (lz * lxm))  # s-direction (j)
    a[:, 2] = np.sqrt(sq.sum(axis=(2, 3)) / (ly * lxm))  # t-direction (k)
    return a


def spectral_error_indicator(field: np.ndarray, tail: int = 4) -> dict[str, np.ndarray]:
    """Resolution diagnostics per element.

    Parameters
    ----------
    field:
        Nodal field ``(nelv, lx, lx, lx)``.
    tail:
        Number of highest modes used for the decay fit (>= 2).

    Returns
    -------
    dict with per-element arrays:
        ``error_fraction`` -- energy in the top mode over total (per worst
        direction); ``decay_rate`` -- fitted exponential decay ``sigma``
        (worst direction; > ~1 means comfortably resolved);
        ``resolved`` -- boolean mask of elements with decaying spectra.
    """
    if tail < 2:
        raise ValueError("tail must be >= 2")
    uh = to_modal(field)
    amp = _directional_amplitudes(uh)  # (nelv, 3, lx)
    nelv, _, lxm = amp.shape
    if tail > lxm:
        tail = lxm

    eps = 1e-300
    total = np.sqrt((amp**2).sum(axis=2)) + eps  # (nelv, 3)
    top = np.maximum(amp[:, :, -1], amp[:, :, -2])
    error_fraction = (top / total).max(axis=1)

    # Symmetric/antisymmetric data has alternating (near-)zero modes that
    # wreck a log fit; the classic remedy is a pairwise running max before
    # fitting.
    amp_s = amp.copy()
    amp_s[:, :, :-1] = np.maximum(amp[:, :, :-1], amp[:, :, 1:])

    # Log-linear fit over the tail modes, per element and direction.
    k = np.arange(lxm - tail, lxm, dtype=np.float64)
    y = np.log(amp_s[:, :, lxm - tail :] + eps)
    kc = k - k.mean()
    denom = float((kc**2).sum())
    slope = (y * kc[None, None, :]).sum(axis=2) / denom  # d log(a) / dk
    sigma = -slope
    # Directions whose tail is pure roundoff (e.g. a field constant along
    # that direction) are fully resolved; the noise fit is meaningless.
    tail_max = amp_s[:, :, lxm - tail :].max(axis=2)
    negligible = tail_max < 1e-12 * total
    sigma = np.where(negligible, 10.0, sigma)
    decay_rate = sigma.min(axis=1)

    return {
        "error_fraction": error_fraction,
        "decay_rate": decay_rate,
        "resolved": decay_rate > 0.0,
    }


def underresolved_elements(
    field: np.ndarray, error_threshold: float = 0.05, tail: int = 4
) -> np.ndarray:
    """Indices of elements whose top-mode energy fraction exceeds the threshold."""
    ind = spectral_error_indicator(field, tail=tail)
    return np.flatnonzero(ind["error_fraction"] > error_threshold)
