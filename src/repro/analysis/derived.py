"""Derived fields and integral budgets.

Vorticity, Q-criterion (the field behind visualizations like the paper's
Fig. 1), enstrophy, and the kinetic-energy budget whose exact steady-state
relations are the standard health check of an RBC DNS:

    production  P = <u_z T>                     (buoyancy work)
    dissipation eps_u = nu <(du_i/dx_j)^2>
    exact:      eps_u = (Nu - 1) / sqrt(Ra Pr)  (free-fall units)

Derivative fields are projected back onto the C^0 space after pointwise
differentiation (the standard SEM smoothing), so repeated post-processing
behaves like any other nodal field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sem.operators import curl, physical_grad
from repro.sem.space import FunctionSpace

__all__ = ["vorticity", "q_criterion", "enstrophy", "EnergyBudget", "kinetic_energy_budget"]


def vorticity(
    space: FunctionSpace, ux: np.ndarray, uy: np.ndarray, uz: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Continuous (projected) vorticity components."""
    wx, wy, wz = curl(ux, uy, uz, space.coef, space.dx)
    return (
        space.project_continuous(wx),
        space.project_continuous(wy),
        space.project_continuous(wz),
    )


def _velocity_gradient(space, ux, uy, uz):
    gx = physical_grad(ux, space.coef, space.dx)
    gy = physical_grad(uy, space.coef, space.dx)
    gz = physical_grad(uz, space.coef, space.dx)
    return gx, gy, gz


def q_criterion(
    space: FunctionSpace, ux: np.ndarray, uy: np.ndarray, uz: np.ndarray
) -> np.ndarray:
    """Q = (|Omega|^2 - |S|^2) / 2: positive inside vortex cores."""
    (uxx, uxy, uxz), (uyx, uyy, uyz), (uzx, uzy, uzz) = _velocity_gradient(
        space, ux, uy, uz
    )
    # Symmetric and antisymmetric parts.
    s_sq = (
        uxx**2 + uyy**2 + uzz**2
        + 0.5 * ((uxy + uyx) ** 2 + (uxz + uzx) ** 2 + (uyz + uzy) ** 2)
    )
    o_sq = 0.5 * ((uxy - uyx) ** 2 + (uxz - uzx) ** 2 + (uyz - uzy) ** 2)
    return space.project_continuous(0.5 * (o_sq - s_sq))


def enstrophy(
    space: FunctionSpace, ux: np.ndarray, uy: np.ndarray, uz: np.ndarray
) -> float:
    """Volume-integrated ``0.5 |omega|^2``."""
    wx, wy, wz = curl(ux, uy, uz, space.coef, space.dx)
    return 0.5 * space.integrate(wx**2 + wy**2 + wz**2)


@dataclass
class EnergyBudget:
    """Kinetic-energy budget terms (free-fall units)."""

    production: float  # <u_z T>, volume-averaged buoyancy work
    dissipation: float  # nu <(grad u) : (grad u)>
    dissipation_from_nusselt: float  # exact relation (Nu-1)/sqrt(Ra Pr)
    kinetic_energy: float

    @property
    def balance_residual(self) -> float:
        """|P - eps| / max(P, eps) -- small in a statistically steady state."""
        scale = max(abs(self.production), abs(self.dissipation), 1e-300)
        return abs(self.production - self.dissipation) / scale


def kinetic_energy_budget(
    space: FunctionSpace,
    ux: np.ndarray,
    uy: np.ndarray,
    uz: np.ndarray,
    temperature: np.ndarray,
    rayleigh: float,
    prandtl: float,
    nusselt: float | None = None,
) -> EnergyBudget:
    """Evaluate all budget terms at one instant."""
    nu_visc = np.sqrt(prandtl / rayleigh)
    production = space.mean(uz * temperature)
    (uxx, uxy, uxz), (uyx, uyy, uyz), (uzx, uzy, uzz) = _velocity_gradient(
        space, ux, uy, uz
    )
    grad_sq = (
        uxx**2 + uxy**2 + uxz**2
        + uyx**2 + uyy**2 + uyz**2
        + uzx**2 + uzy**2 + uzz**2
    )
    dissipation = nu_visc * space.mean(grad_sq)
    eps_exact = float("nan")
    if nusselt is not None:
        eps_exact = (nusselt - 1.0) / np.sqrt(rayleigh * prandtl)
    ke = 0.5 * space.integrate(ux**2 + uy**2 + uz**2)
    return EnergyBudget(
        production=float(production),
        dissipation=float(dissipation),
        dissipation_from_nusselt=float(eps_exact),
        kinetic_energy=float(ke),
    )
