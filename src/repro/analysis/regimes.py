"""Nu(Ra) scaling laws, fits and crossover detection.

Reference behaviours:

* classical: ``Nu = A Ra^(1/3)`` -- boundary-layer-limited transport, the
  scaling Iyer et al. (2020) found to hold up to Ra = 1e15 in the slender
  cell (their fit: ``Nu ~ 0.0525 Ra^0.331``);
* ultimate (Kraichnan 1962): ``Nu = B Ra^(1/2) / (ln Ra)^(3/2)`` once the
  boundary layers turn turbulent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "local_exponents",
    "detect_crossover",
    "classical_nu",
    "ultimate_nu",
]


def classical_nu(ra: np.ndarray, prefactor: float = 0.0525, exponent: float = 1.0 / 3.0) -> np.ndarray:
    """Classical-regime Nusselt number."""
    return prefactor * np.asarray(ra, dtype=np.float64) ** exponent


def ultimate_nu(ra: np.ndarray, prefactor: float = 0.0365, log_correction: bool = True) -> np.ndarray:
    """Kraichnan ultimate-regime Nusselt number.

    With ``log_correction`` the ``(ln Ra)^{-3/2}`` factor of Kraichnan's
    1962 prediction is applied; the default prefactor places the crossover
    against the classical branch near Ra ~ 1e14, inside the window the
    recent literature argues about.
    """
    ra = np.asarray(ra, dtype=np.float64)
    nu = prefactor * ra**0.5
    if log_correction:
        nu = nu / np.log(ra) ** 1.5
    return nu


@dataclass
class PowerLawFit:
    """Result of a log-log least-squares fit ``Nu = A Ra^gamma``."""

    prefactor: float
    exponent: float
    exponent_stderr: float
    r_squared: float

    def predict(self, ra: np.ndarray) -> np.ndarray:
        return self.prefactor * np.asarray(ra, dtype=np.float64) ** self.exponent


def fit_power_law(ra: np.ndarray, nu: np.ndarray) -> PowerLawFit:
    """Least-squares fit of ``log Nu`` against ``log Ra``."""
    ra = np.asarray(ra, dtype=np.float64)
    nu = np.asarray(nu, dtype=np.float64)
    if len(ra) < 2:
        raise ValueError("need at least two points to fit a power law")
    if np.any(ra <= 0) or np.any(nu <= 0):
        raise ValueError("Ra and Nu must be positive")
    x = np.log(ra)
    y = np.log(nu)
    a = np.vstack([x, np.ones_like(x)]).T
    coef, res, _, _ = np.linalg.lstsq(a, y, rcond=None)
    gamma, loga = coef
    yhat = a @ coef
    ss_res = float(np.sum((y - yhat) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    n = len(x)
    if n > 2 and ss_res > 0:
        sigma2 = ss_res / (n - 2)
        sxx = float(np.sum((x - x.mean()) ** 2))
        stderr = float(np.sqrt(sigma2 / sxx))
    else:
        stderr = 0.0
    return PowerLawFit(float(np.exp(loga)), float(gamma), stderr, r2)


def local_exponents(ra: np.ndarray, nu: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Running local exponent ``d ln Nu / d ln Ra`` (centered differences).

    Returns ``(ra_mid, gamma_local)``; the classical and ultimate regimes
    show up as plateaus near 1/3 and 1/2.
    """
    ra = np.asarray(ra, dtype=np.float64)
    nu = np.asarray(nu, dtype=np.float64)
    if len(ra) < 3:
        raise ValueError("need at least three points for local exponents")
    x = np.log(ra)
    y = np.log(nu)
    gamma = (y[2:] - y[:-2]) / (x[2:] - x[:-2])
    ra_mid = np.exp(x[1:-1])
    return ra_mid, gamma


def detect_crossover(
    ra: np.ndarray,
    nu: np.ndarray,
    gamma_threshold: float = 5.0 / 12.0,
) -> float | None:
    """First Ra where the local exponent rises above the threshold.

    The default threshold is the midpoint of 1/3 and 1/2.  Returns ``None``
    when the series never leaves the classical regime (the Iyer et al.
    conclusion up to 1e15).
    """
    ra_mid, gamma = local_exponents(ra, nu)
    above = np.flatnonzero(gamma >= gamma_threshold)
    if len(above) == 0:
        return None
    i = above[0]
    if i == 0:
        return float(ra_mid[0])
    # Log-linear interpolation to the threshold crossing.
    g0, g1 = gamma[i - 1], gamma[i]
    x0, x1 = np.log(ra_mid[i - 1]), np.log(ra_mid[i])
    frac = (gamma_threshold - g0) / (g1 - g0) if g1 != g0 else 0.5
    return float(np.exp(x0 + frac * (x1 - x0)))
