"""Horizontally averaged profiles and boundary-layer diagnostics.

RBC statistics live in ``z``: the mean temperature profile shows the two
thermal boundary layers whose thickness ``lambda_T ~ H / (2 Nu)`` controls
the transport, and whose laminar-to-turbulent transition is the mechanism
behind the ultimate regime.
"""

from __future__ import annotations

import numpy as np

from repro.sem.space import FunctionSpace

__all__ = ["mean_profile", "thermal_bl_thickness"]


def mean_profile(
    space: FunctionSpace, field: np.ndarray, decimals: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Mass-weighted horizontal average as a function of ``z``.

    GLL nodes are grouped by their (rounded) ``z`` coordinate; each group's
    average is weighted with the nodal mass, which makes the profile exact
    for the discrete integrand on any conforming mesh (box or cylinder).
    Returns ``(z_levels, profile)`` sorted in increasing ``z``.
    """
    z = np.round(space.z.reshape(-1), decimals)
    w = space.coef.mass.reshape(-1)
    f = field.reshape(-1)
    levels, inverse = np.unique(z, return_inverse=True)
    wsum = np.bincount(inverse, weights=w)
    fsum = np.bincount(inverse, weights=w * f)
    return levels, fsum / wsum


def thermal_bl_thickness(
    z: np.ndarray, t_profile: np.ndarray, wall: str = "bottom"
) -> float:
    """Slope-intersection boundary-layer thickness.

    The tangent to the mean temperature profile at the wall is extended
    until it meets the bulk (centre) temperature; the intersection height
    is the thermal BL thickness, the standard definition in the RBC
    literature (``lambda_T ~= H / (2 Nu)`` in a steady state).
    """
    z = np.asarray(z, dtype=np.float64)
    t = np.asarray(t_profile, dtype=np.float64)
    if len(z) < 3:
        raise ValueError("profile too short")
    t_bulk = float(t[np.argmin(np.abs(z - 0.5 * (z[0] + z[-1])))])
    if wall == "bottom":
        slope = (t[1] - t[0]) / (z[1] - z[0])
        t_wall = t[0]
    elif wall == "top":
        slope = (t[-1] - t[-2]) / (z[-1] - z[-2])
        t_wall = t[-1]
    else:
        raise ValueError("wall must be 'bottom' or 'top'")
    if slope == 0.0:
        raise ValueError("zero wall gradient; no boundary layer")
    # Tangent from the wall meets the bulk value at distance |dT| / |slope|.
    return float(abs((t_bulk - t_wall) / slope))
