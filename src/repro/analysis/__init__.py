"""Physics analysis: the ultimate-regime question (Sections 3 and 8.1).

The paper's scientific goal is the scaling of Nu with Ra: classical
``Nu ~ Ra^{1/3}`` versus Kraichnan's ultimate ``Nu ~ Ra^{1/2}`` (with
logarithmic corrections).  This package provides:

* power-law fitting and local-exponent analysis of Nu(Ra) series, plus
  crossover detection (:mod:`repro.analysis.regimes`);
* a Grossmann--Lohse-theory generator of synthetic Nu(Ra, Pr) data with an
  optional ultimate-regime extension -- the documented substitution for
  the Ra > 1e12 simulations no laptop can run
  (:mod:`repro.analysis.gl_model`);
* energy spectra of box-mesh fields and Kolmogorov/Batchelor scale
  estimates (:mod:`repro.analysis.spectra`);
* horizontally averaged profiles and boundary-layer thickness diagnostics
  (:mod:`repro.analysis.profiles`).
"""

from repro.analysis.regimes import (
    PowerLawFit,
    fit_power_law,
    local_exponents,
    detect_crossover,
    classical_nu,
    ultimate_nu,
)
from repro.analysis.gl_model import GrossmannLohse, UltimateExtension
from repro.analysis.spectra import sample_uniform_box, energy_spectrum, kolmogorov_scale
from repro.analysis.profiles import mean_profile, thermal_bl_thickness
from repro.analysis.error_indicator import spectral_error_indicator, underresolved_elements
from repro.analysis.derived import (
    EnergyBudget,
    enstrophy,
    kinetic_energy_budget,
    q_criterion,
    vorticity,
)

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "local_exponents",
    "detect_crossover",
    "classical_nu",
    "ultimate_nu",
    "GrossmannLohse",
    "UltimateExtension",
    "sample_uniform_box",
    "energy_spectrum",
    "kolmogorov_scale",
    "mean_profile",
    "thermal_bl_thickness",
    "spectral_error_indicator",
    "underresolved_elements",
    "EnergyBudget",
    "enstrophy",
    "kinetic_energy_budget",
    "q_criterion",
    "vorticity",
]
