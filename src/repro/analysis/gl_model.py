"""Grossmann--Lohse unifying theory of thermal convection [GL 2000].

Solves the two implicit GL equations for Nu(Ra, Pr) and Re(Ra, Pr) with
the refitted 2013 prefactors (Stevens, van der Poel, Grossmann & Lohse,
J. Fluid Mech. 730):

    (Nu - 1) Ra Pr^{-2} = c1 Re^2 / g(sqrt(Re_L/Re)) + c2 Re^3
    Nu - 1 = c3 Re^{1/2} Pr^{1/2} f(x_L)^{1/2} + c4 Pr Re f(x_L)

with the crossover functions ``f(x) = (1 + x^4)^{-1/4}``,
``g(x) = x (1 + x^4)^{-1/4}`` and ``x_L = 2 a Nu / sqrt(Re_L) *
g(sqrt(Re_L/Re))``.

This supplies smooth, literature-consistent Nu(Ra) curves in the classical
regime.  :class:`UltimateExtension` grafts a Kraichnan branch on top --
the documented substitution for the beyond-1e13 simulations the paper's
workflow targets but no laptop can run: it exercises exactly the analysis
code path (fits, local exponents, crossover detection) the real data
would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.analysis.regimes import ultimate_nu

__all__ = ["GrossmannLohse", "UltimateExtension"]


def _f(x: np.ndarray) -> np.ndarray:
    return (1.0 + x**4) ** (-0.25)


def _g(x: np.ndarray) -> np.ndarray:
    return x * (1.0 + x**4) ** (-0.25)


@dataclass
class GrossmannLohse:
    """GL-theory Nu and Re with the 2013 prefactors."""

    c1: float = 8.05
    c2: float = 1.38
    c3: float = 0.487
    c4: float = 0.0252
    a: float = 0.922

    @property
    def re_l(self) -> float:
        """Laminar-BL crossover Reynolds number ``(2a)^2``."""
        return (2.0 * self.a) ** 2

    def _equations(self, logvars: np.ndarray, ra: float, pr: float) -> np.ndarray:
        nu, re = np.exp(logvars)
        xl = 2.0 * self.a * nu / np.sqrt(self.re_l) * _g(np.sqrt(self.re_l / re))
        eq1 = (nu - 1.0) * ra / pr**2 - (
            self.c1 * re**2 / _g(np.sqrt(self.re_l / re)) + self.c2 * re**3
        )
        eq2 = (nu - 1.0) - (
            self.c3 * np.sqrt(re * pr) * np.sqrt(_f(xl)) + self.c4 * pr * re * _f(xl)
        )
        # Normalize for a well-scaled root find.
        return np.array([eq1 / (self.c2 * re**3 + 1.0), eq2 / (nu + 1.0)])

    def solve(self, ra: float, pr: float = 1.0) -> tuple[float, float]:
        """``(Nu, Re)`` for one (Ra, Pr)."""
        if ra < 1e3 or pr <= 0:
            raise ValueError("GL model needs Ra >= 1e3 and Pr > 0")
        # Classical-scaling initial guess.
        nu0 = max(1.5, 0.06 * ra ** (1.0 / 3.0))
        re0 = max(1.0, 0.2 * (ra / pr) ** 0.45)
        sol, info, ier, msg = scipy.optimize.fsolve(
            self._equations,
            np.log([nu0, re0]),
            args=(ra, pr),
            full_output=True,
            xtol=1e-12,
        )
        if ier != 1:
            raise RuntimeError(f"GL solve failed at Ra={ra:g}, Pr={pr:g}: {msg}")
        nu, re = np.exp(sol)
        return float(nu), float(re)

    def nusselt(self, ra: np.ndarray, pr: float = 1.0) -> np.ndarray:
        """Vectorized Nu over an array of Ra."""
        return np.array([self.solve(float(r), pr)[0] for r in np.atleast_1d(ra)])

    def reynolds(self, ra: np.ndarray, pr: float = 1.0) -> np.ndarray:
        """Vectorized Re over an array of Ra."""
        return np.array([self.solve(float(r), pr)[1] for r in np.atleast_1d(ra)])


@dataclass
class UltimateExtension:
    """GL classical branch + Kraichnan ultimate branch.

    ``Nu(Ra) = max(Nu_GL, B Ra^{1/2} (ln Ra)^{-3/2})`` with a smooth blend
    over one decade around the crossing.  ``ultimate_prefactor`` positions
    the transition: the default crosses the GL branch near Ra ~ 5e13,
    mid-way in the contested window.
    """

    gl: GrossmannLohse = None
    ultimate_prefactor: float = 0.04
    blend_decades: float = 1.0

    def __post_init__(self) -> None:
        if self.gl is None:
            self.gl = GrossmannLohse()

    def nusselt(self, ra: np.ndarray, pr: float = 1.0) -> np.ndarray:
        ra = np.atleast_1d(np.asarray(ra, dtype=np.float64))
        nu_cl = self.gl.nusselt(ra, pr)
        nu_ul = ultimate_nu(ra, prefactor=self.ultimate_prefactor)
        # Smooth maximum: logistic blend in log(Nu_ul / Nu_cl).
        t = np.log(nu_ul / nu_cl) / (self.blend_decades * np.log(10.0))
        w = 1.0 / (1.0 + np.exp(-8.0 * t))
        return np.exp((1.0 - w) * np.log(nu_cl) + w * np.log(nu_ul))

    def crossover_ra(self, pr: float = 1.0) -> float:
        """Ra where the two branches cross (bisection in log space)."""

        def diff(logra: float) -> float:
            ra = np.exp(logra)
            return float(
                np.log(ultimate_nu(np.array([ra]), self.ultimate_prefactor)[0])
                - np.log(self.gl.nusselt(np.array([ra]), pr)[0])
            )

        lo, hi = np.log(1e8), np.log(1e17)
        if diff(lo) > 0 or diff(hi) < 0:
            raise RuntimeError("no crossover in [1e8, 1e17]; check prefactors")
        return float(np.exp(scipy.optimize.brentq(diff, lo, hi, xtol=1e-10)))
