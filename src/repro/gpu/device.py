"""GPU device models for the execution simulator.

Parameters are drawn from public device documentation and the paper's
Table 1; timing constants (launch overhead, minimum kernel time) are the
commonly measured microbenchmark values for the respective runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuModel", "A100", "MI250X_GCD"]


@dataclass(frozen=True)
class GpuModel:
    """Timing-relevant properties of one logical GPU.

    Attributes
    ----------
    name:
        Marketing name.
    peak_bandwidth_gbs:
        HBM bandwidth per logical GPU (Table 1: 1550 GB/s for A100-64GB
        wait -- the paper lists per-GPU bandwidth; 1.55 TB/s A100, 1.6 TB/s
        per MI250X GCD out of 3.3 TB/s per module).
    peak_fp64_tflops:
        Vector FP64 peak per logical GPU.
    launch_overhead_us:
        Host-side cost of one kernel launch (CUDA/HIP API call).
    submit_delay_us:
        Additional latency until the kernel is visible to the device
        scheduler.
    min_kernel_us:
        Floor on device-side kernel duration (scheduling granularity).
    requires_priority_for_concurrency:
        The paper: "This is necessary on NVIDIA GPUs to allow small
        coarse-solve kernels to progress even in the presence of already
        executing larger kernels.  This is not a concern on AMD GPUs."
    """

    name: str
    peak_bandwidth_gbs: float
    peak_fp64_tflops: float
    launch_overhead_us: float = 4.0
    submit_delay_us: float = 1.0
    min_kernel_us: float = 3.0
    requires_priority_for_concurrency: bool = True

    def kernel_duration_us(self, bytes_moved: float, flops: float = 0.0) -> float:
        """Roofline duration of one kernel in microseconds."""
        t_bw = bytes_moved / (self.peak_bandwidth_gbs * 1e9) * 1e6
        t_fl = flops / (self.peak_fp64_tflops * 1e12) * 1e6 if flops else 0.0
        return max(self.min_kernel_us, t_bw, t_fl)


# Leonardo's accelerator (Table 1): custom A100 SXM, 64 GB HBM2e.
A100 = GpuModel(
    name="NVIDIA A100",
    peak_bandwidth_gbs=1550.0,
    peak_fp64_tflops=9.7,
    launch_overhead_us=4.0,
    submit_delay_us=1.0,
    min_kernel_us=3.0,
    requires_priority_for_concurrency=True,
)

# LUMI's logical GPU (Table 1): one Graphics Compute Die of an MI250X.
MI250X_GCD = GpuModel(
    name="AMD MI250X (GCD)",
    peak_bandwidth_gbs=1650.0,  # 3300 GB/s per module, two GCDs
    peak_fp64_tflops=23.95,  # 47.9 per module
    launch_overhead_us=5.0,
    submit_delay_us=1.5,
    min_kernel_us=4.0,
    requires_priority_for_concurrency=False,
)
