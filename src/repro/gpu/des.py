"""The discrete-event simulator: host threads, streams, device scheduler.

Model
-----
* Each **host thread** executes a linear program of ops: kernel launches
  (host busy for the API overhead, then the kernel is handed to a stream),
  host compute, stream synchronization, host-blocking MPI (allreduce /
  halo wait) and thread barriers.
* Each **stream** is a FIFO: its kernels start in order, but kernels from
  *different* streams may overlap on the device subject to an occupancy
  budget (total occupancy <= 1).
* The **device scheduler** starts pending kernels either in priority order
  (stream priorities, as the paper configures on NVIDIA) or in strict
  arrival order (head-of-line blocking -- what happens on NVIDIA without
  priorities; AMD behaves like the priority scheduler regardless).

The simulator records every interval (host API, host compute, MPI, device
kernels) so traces akin to the paper's Fig. 2 Nsight timeline can be
rendered in text and asserted on in tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.gpu.device import GpuModel

__all__ = [
    "Launch",
    "HostCompute",
    "StreamSync",
    "AllReduce",
    "Barrier",
    "HostProgram",
    "TraceInterval",
    "DeviceSimulator",
]


# -- host ops -----------------------------------------------------------------


@dataclass(frozen=True)
class Launch:
    """Launch a kernel onto a stream."""

    kernel: str
    stream: int
    duration_us: float
    occupancy: float = 0.85


@dataclass(frozen=True)
class HostCompute:
    """Host-side CPU work (packing buffers, small host solves)."""

    label: str
    duration_us: float


@dataclass(frozen=True)
class StreamSync:
    """Block the host thread until the stream has drained."""

    stream: int


@dataclass(frozen=True)
class AllReduce:
    """Host-blocking MPI operation (reduction or halo wait)."""

    label: str
    duration_us: float


@dataclass(frozen=True)
class Barrier:
    """OpenMP-style barrier across all host threads."""

    tag: str = "omp"


HostOp = Launch | HostCompute | StreamSync | AllReduce | Barrier


@dataclass
class HostProgram:
    """One host thread's op sequence."""

    thread_id: int
    ops: list[HostOp] = field(default_factory=list)


@dataclass(frozen=True)
class TraceInterval:
    """One bar of the timeline."""

    lane: str  # "host0", "stream1", "mpi0", ...
    name: str
    start_us: float
    end_us: float
    kind: str  # "api", "host", "kernel", "mpi", "barrier"

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class _PendingKernel:
    kernel: str
    stream: int
    duration: float
    occupancy: float
    arrival: float
    seq: int


class DeviceSimulator:
    """Event-driven execution of host programs against one GPU model.

    Parameters
    ----------
    device:
        Timing model of the GPU.
    stream_priorities:
        ``stream -> priority`` (higher runs first).  An empty mapping means
        all streams share the default priority.
    use_priorities:
        Explicitly control the scheduler mode; defaults to
        ``True`` when any priority was set or when the device does not
        require priorities for concurrency (the AMD behaviour).
    """

    def __init__(
        self,
        device: GpuModel,
        stream_priorities: dict[int, int] | None = None,
        use_priorities: bool | None = None,
    ) -> None:
        self.device = device
        self.priorities = dict(stream_priorities or {})
        if use_priorities is None:
            use_priorities = bool(self.priorities) or not device.requires_priority_for_concurrency
        self.use_priorities = use_priorities
        self.trace: list[TraceInterval] = []

    # -- public API ---------------------------------------------------------

    def run(self, programs: list[HostProgram]) -> float:
        """Execute the programs; returns the makespan in microseconds."""
        self.trace = []
        now = 0.0
        seq = 0
        events: list[tuple[float, int, str, object]] = []

        # Per-thread state.
        pc = {p.thread_id: 0 for p in programs}
        progs = {p.thread_id: p for p in programs}
        blocked: dict[int, tuple[str, object]] = {}

        # Device state.
        pending: list[_PendingKernel] = []
        running: list[tuple[float, _PendingKernel]] = []  # (end, k)
        capacity = 1.0
        outstanding: dict[int, int] = {}

        barrier_waiting: dict[str, set[int]] = {}
        n_threads = len(programs)

        def push(t: float, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (t, seq, kind, payload))
            seq += 1

        def try_schedule(t: float) -> None:
            nonlocal capacity
            changed = True
            while changed:
                changed = False
                avail = [k for k in pending if k.arrival <= t]
                if not avail:
                    break
                if self.use_priorities:
                    avail.sort(key=lambda k: (-self.priorities.get(k.stream, 0), k.arrival, k.seq))
                else:
                    # Strict arrival order with head-of-line blocking: only
                    # the earliest-arrived kernel may start.
                    avail.sort(key=lambda k: (k.arrival, k.seq))
                    avail = avail[:1]
                for k in avail:
                    # In-order within a stream: a kernel may start only if no
                    # earlier kernel of its stream is pending or running.
                    earlier_pending = any(
                        o.stream == k.stream and o.seq < k.seq for o in pending if o is not k
                    )
                    earlier_running = any(o.stream == k.stream for _, o in running)
                    if earlier_pending or earlier_running:
                        continue
                    if k.occupancy <= capacity + 1e-12:
                        pending.remove(k)
                        capacity -= k.occupancy
                        end = t + k.duration
                        running.append((end, k))
                        self.trace.append(
                            TraceInterval(f"stream{k.stream}", k.kernel, t, end, "kernel")
                        )
                        push(end, "kernel_done", k)
                        changed = True
                        break

        def wake_syncers(t: float) -> None:
            for tid, (why, arg) in list(blocked.items()):
                if why == "sync" and outstanding.get(arg, 0) == 0:
                    del blocked[tid]
                    push(t, "host", tid)

        for p in programs:
            push(0.0, "host", p.thread_id)

        makespan = 0.0
        while events:
            t, _, kind, payload = heapq.heappop(events)
            now = t
            makespan = max(makespan, now)

            if kind == "kernel_done":
                k = payload
                running[:] = [(e, o) for e, o in running if o is not k]
                capacity += k.occupancy
                outstanding[k.stream] -= 1
                try_schedule(now)
                wake_syncers(now)
                makespan = max(makespan, now)
                continue

            if kind == "arrival":
                try_schedule(now)
                continue

            # Host thread ready to run its next op.
            tid = payload
            if tid in blocked:
                continue
            prog = progs[tid]
            if pc[tid] >= len(prog.ops):
                continue
            op = prog.ops[pc[tid]]
            pc[tid] += 1

            if isinstance(op, Launch):
                api_end = now + self.device.launch_overhead_us
                self.trace.append(
                    TraceInterval(f"host{tid}", f"launch:{op.kernel}", now, api_end, "api")
                )
                arrival = api_end + self.device.submit_delay_us
                pending.append(
                    _PendingKernel(
                        op.kernel, op.stream, max(op.duration_us, self.device.min_kernel_us),
                        op.occupancy, arrival, seq,
                    )
                )
                outstanding[op.stream] = outstanding.get(op.stream, 0) + 1
                push(arrival, "arrival", None)
                push(api_end, "host", tid)
            elif isinstance(op, HostCompute):
                end = now + op.duration_us
                self.trace.append(TraceInterval(f"host{tid}", op.label, now, end, "host"))
                push(end, "host", tid)
            elif isinstance(op, StreamSync):
                if outstanding.get(op.stream, 0) == 0:
                    push(now, "host", tid)
                else:
                    blocked[tid] = ("sync", op.stream)
            elif isinstance(op, AllReduce):
                end = now + op.duration_us
                self.trace.append(TraceInterval(f"mpi{tid}", op.label, now, end, "mpi"))
                push(end, "host", tid)
            elif isinstance(op, Barrier):
                waiting = barrier_waiting.setdefault(op.tag, set())
                waiting.add(tid)
                if len(waiting) == n_threads:
                    for other in waiting:
                        blocked.pop(other, None)
                        push(now, "host", other)
                    waiting.clear()
                else:
                    blocked[tid] = ("barrier", op.tag)
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown op {op!r}")

            try_schedule(now)
            wake_syncers(now)

        return makespan

    # -- analysis -------------------------------------------------------------

    def lane_busy_time(self, lane_prefix: str) -> float:
        """Total busy time on lanes starting with the prefix (e.g. ``stream``)."""
        return sum(i.duration_us for i in self.trace if i.lane.startswith(lane_prefix))

    def device_busy_time(self) -> float:
        """Union length of all kernel intervals (true device utilization)."""
        ivs = sorted(
            (i.start_us, i.end_us) for i in self.trace if i.kind == "kernel"
        )
        busy = 0.0
        cur_s, cur_e = None, None
        for s, e in ivs:
            if cur_e is None or s > cur_e:
                if cur_e is not None:
                    busy += cur_e - cur_s
                cur_s, cur_e = s, e
            else:
                cur_e = max(cur_e, e)
        if cur_e is not None:
            busy += cur_e - cur_s
        return busy

    def render_timeline(self, width: int = 100, lanes: list[str] | None = None) -> str:
        """ASCII timeline of the trace (one row per lane)."""
        if not self.trace:
            return "<empty trace>"
        t_max = max(i.end_us for i in self.trace)
        if lanes is None:
            lanes = sorted({i.lane for i in self.trace})
        rows = []
        scale = width / t_max if t_max > 0 else 1.0
        for lane in lanes:
            row = [" "] * width
            for iv in self.trace:
                if iv.lane != lane:
                    continue
                a = min(width - 1, int(iv.start_us * scale))
                b = min(width, max(a + 1, int(iv.end_us * scale)))
                ch = {"api": "a", "host": "h", "kernel": "#", "mpi": "M", "barrier": "|"}[iv.kind]
                for c in range(a, b):
                    row[c] = ch
            rows.append(f"{lane:>9s} |{''.join(row)}|")
        rows.append(f"{'':>9s}  0{'':{width - 12}}{t_max:9.1f} us")
        return "\n".join(rows)
