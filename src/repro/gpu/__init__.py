"""Discrete-event simulation of GPU execution (Section 5.3 / Fig. 2).

The paper's task-overlap result is a *scheduling* phenomenon: the coarse
grid solve is dominated by kernel-launch latency, tiny device kernels and
host-blocking MPI reductions, while the fine Schwarz smoother is a stream
of large bandwidth-bound kernels.  Launching the two parts from separate
OpenMP threads onto separate streams (the coarse stream at high priority)
hides the launch latency and the MPI waits under the big kernels.

This package reproduces that mechanism with a discrete-event simulator:

* :mod:`repro.gpu.device` -- GPU models (A100, MI250X GCD) with launch
  overheads, bandwidth, occupancy-based concurrency and the
  priority-scheduling quirk the paper notes (NVIDIA needs stream
  priorities for small kernels to progress beside large ones; AMD
  schedules concurrent kernels regardless).
* :mod:`repro.gpu.des` -- the simulator: host threads issuing launches,
  syncs, host compute and MPI waits; streams; a capacity-based device
  scheduler; full interval traces.
* :mod:`repro.gpu.schwarz` -- builds the serial and task-parallel
  additive-Schwarz schedules from the preconditioner's kernel inventory
  and measures the wall-time reduction (the Fig. 2 experiment).
"""

from repro.gpu.device import GpuModel, A100, MI250X_GCD
from repro.gpu.des import (
    DeviceSimulator,
    HostProgram,
    Launch,
    HostCompute,
    StreamSync,
    AllReduce,
    Barrier,
    TraceInterval,
)
from repro.gpu.schwarz import SchwarzOverlapStudy, SchwarzPhaseResult

__all__ = [
    "GpuModel",
    "A100",
    "MI250X_GCD",
    "DeviceSimulator",
    "HostProgram",
    "Launch",
    "HostCompute",
    "StreamSync",
    "AllReduce",
    "Barrier",
    "TraceInterval",
    "SchwarzOverlapStudy",
    "SchwarzPhaseResult",
]
