"""The Fig. 2 experiment: serial vs task-parallel additive Schwarz.

Builds the two schedules of Section 5.3 for one GPU's share of a
production-like mesh and executes them on the discrete-event simulator:

* **serial** -- one host thread, one stream: the coarse-grid solve (many
  tiny kernels, two host-blocking allreduces per CG iteration) runs before
  the fine-level FDM smoother (few large bandwidth-bound kernels).
* **task-parallel** -- two OpenMP threads, two streams; the coarse stream
  gets high priority ("to allow small coarse-solve kernels to progress
  even in the presence of already executing larger kernels").

The reduction of the Schwarz-phase wall time between the two is the
quantity the paper reports as ~20% on a 4x A100 node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.des import AllReduce, Barrier, DeviceSimulator, HostProgram, Launch, StreamSync
from repro.gpu.device import A100, GpuModel

__all__ = ["SchwarzWorkload", "SchwarzPhaseResult", "SchwarzOverlapStudy"]


@dataclass
class SchwarzWorkload:
    """Per-GPU workload parameters of one Schwarz application.

    Defaults model the paper's "small test case representative of the
    strong-scaling regime of typical production workloads" on one of four
    NVLink-connected A100s: a few thousand elements per GPU at polynomial
    degree 7, a 10-iteration coarse solve, and intra-node NVLink/NCCL-free
    MPI reductions.
    """

    n_elements: int = 7000
    lx: int = 8
    coarse_iterations: int = 10
    allreduce_us: float = 6.0
    halo_bytes_per_face: float = 8.0 * 64 * 64  # one lx^2 face of doubles
    n_halo_neighbors: int = 6

    def fine_kernels(self, device: GpuModel, stream: int) -> list[Launch]:
        """Large bandwidth-bound kernels of the FDM smoother.

        The local solves act on the one-layer-extended ``(lx+2)^3`` arrays
        (the overlapping-Schwarz working set), which is what sizes the
        tensor-contraction passes.
        """
        pts = self.n_elements * (self.lx + 2) ** 3
        full_pass = 2.0 * 8.0 * pts  # read + write one field
        seq = [
            ("schwarz_mask", 1.0),
            ("fdm_apply_r", 2.0),   # in + out + operator traffic
            ("fdm_apply_s", 2.0),
            ("fdm_apply_t", 2.0),
            ("fdm_scale", 1.0),
            ("fdm_applyT_r", 2.0),
            ("fdm_applyT_s", 2.0),
            ("fdm_applyT_t", 2.0),
            ("schwarz_weight", 1.0),
            ("gs_local", 0.5),
            ("schwarz_mask2", 1.0),
        ]
        return [
            Launch(name, stream, device.kernel_duration_us(fac * full_pass), occupancy=0.85)
            for name, fac in seq
        ]

    def coarse_ops(self, device: GpuModel, stream: int, stream_aware_mpi: bool = False) -> list:
        """Launch-latency and reduction dominated coarse-solve sequence.

        With ``stream_aware_mpi`` the reductions become stream-ordered
        triggered operations (Namashivayam et al. [20]): no host-side
        stream synchronization, the communication appears as a low-
        occupancy "kernel" on the coarse stream.  The paper: "Stream-aware
        MPI approaches ... would integrate well with our approach and we
        expect these to further improve efficiency."
        """
        nv = self.n_elements  # ~one vertex dof per element on the coarse level
        small = 2.0 * 8.0 * nv

        def reduction(label: str) -> list:
            if stream_aware_mpi:
                return [
                    Launch(f"triggered_{label}", stream, self.allreduce_us, occupancy=0.02)
                ]
            return [StreamSync(stream), AllReduce(label, self.allreduce_us)]

        ops: list = [
            Launch("coarse_restrict", stream,
                   device.kernel_duration_us(2.0 * 8.0 * self.n_elements * self.lx**2),
                   occupancy=0.1),
        ]
        for _ in range(self.coarse_iterations):
            # Fused CG kernels (ax+gs, jacobi+axpy) as production coarse
            # solvers ship them; two reductions per iteration.
            ops += [
                Launch("coarse_ax_gs", stream, device.kernel_duration_us(9 * small), occupancy=0.1),
                *reduction("dot1"),
                Launch("coarse_jacobi_axpy", stream, device.kernel_duration_us(2 * small), occupancy=0.05),
                *reduction("dot2"),
                Launch("coarse_update", stream, device.kernel_duration_us(small), occupancy=0.05),
            ]
        ops.append(
            Launch("coarse_prolong", stream,
                   device.kernel_duration_us(2.0 * 8.0 * self.n_elements * self.lx**2),
                   occupancy=0.1)
        )
        return ops

    def halo_exchange_us(self, device: GpuModel) -> float:
        """Host-blocking wait for the gather-scatter halo exchange."""
        msg = self.halo_bytes_per_face * self.n_halo_neighbors
        # NVLink-ish intra-node bandwidth; latency comparable to allreduce.
        return self.allreduce_us + msg / 200e9 * 1e6


@dataclass
class SchwarzPhaseResult:
    """Outcome of one schedule variant."""

    wall_us: float
    device_busy_us: float
    simulator: DeviceSimulator = field(repr=False)

    @property
    def utilization(self) -> float:
        return self.device_busy_us / self.wall_us if self.wall_us else 0.0


class SchwarzOverlapStudy:
    """Run serial / overlapped / no-priority schedules and compare."""

    def __init__(self, device: GpuModel = A100, workload: SchwarzWorkload | None = None) -> None:
        self.device = device
        self.workload = workload if workload is not None else SchwarzWorkload()

    def _serial_program(self, applications: int) -> list[HostProgram]:
        w = self.workload
        ops: list = []
        for _ in range(applications):
            ops += w.coarse_ops(self.device, stream=0)
            ops += w.fine_kernels(self.device, stream=0)
            ops.append(StreamSync(0))
            ops.append(AllReduce("gs_halo", w.halo_exchange_us(self.device)))
        return [HostProgram(0, ops)]

    def _overlapped_programs(
        self, applications: int, stream_aware_mpi: bool = False
    ) -> list[HostProgram]:
        w = self.workload
        fine: list = []
        coarse: list = []
        for i in range(applications):
            fine += w.fine_kernels(self.device, stream=0)
            fine.append(StreamSync(0))
            fine.append(AllReduce("gs_halo", w.halo_exchange_us(self.device)))
            fine.append(Barrier(f"apply{i}"))
            coarse += w.coarse_ops(self.device, stream=1, stream_aware_mpi=stream_aware_mpi)
            coarse.append(StreamSync(1))
            coarse.append(Barrier(f"apply{i}"))
        return [HostProgram(0, fine), HostProgram(1, coarse)]

    def run_serial(self, applications: int = 1) -> SchwarzPhaseResult:
        sim = DeviceSimulator(self.device)
        wall = sim.run(self._serial_program(applications))
        return SchwarzPhaseResult(wall, sim.device_busy_time(), sim)

    def run_overlapped(
        self,
        applications: int = 1,
        priorities: bool = True,
        stream_aware_mpi: bool = False,
    ) -> SchwarzPhaseResult:
        # Without explicit stream priorities the scheduler mode falls back
        # to the device default: arrival order on NVIDIA (head-of-line
        # blocking), concurrent on AMD -- the asymmetry Section 5.3 calls
        # out.
        prio = {1: 1, 0: 0} if priorities else {}
        sim = DeviceSimulator(self.device, stream_priorities=prio)
        wall = sim.run(self._overlapped_programs(applications, stream_aware_mpi))
        return SchwarzPhaseResult(wall, sim.device_busy_time(), sim)

    def reduction(self, applications: int = 50) -> dict[str, float]:
        """Wall-time reduction of the overlapped schedule (Fig. 2's number).

        Also evaluates the paper's flagged future work: stream-aware MPI
        (triggered operations) removing the host-blocking reductions from
        the coarse path.
        """
        ser = self.run_serial(applications)
        ovl = self.run_overlapped(applications)
        nop = self.run_overlapped(applications, priorities=False)
        swm = self.run_overlapped(applications, stream_aware_mpi=True)
        return {
            "serial_us": ser.wall_us,
            "overlap_us": ovl.wall_us,
            "overlap_nopriority_us": nop.wall_us,
            "overlap_stream_aware_us": swm.wall_us,
            "reduction": 1.0 - ovl.wall_us / ser.wall_us,
            "reduction_nopriority": 1.0 - nop.wall_us / ser.wall_us,
            "reduction_stream_aware": 1.0 - swm.wall_us / ser.wall_us,
            "serial_utilization": ser.utilization,
            "overlap_utilization": ovl.utilization,
        }
