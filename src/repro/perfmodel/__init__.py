"""Whole-application performance model of Neko on LUMI and Leonardo.

The paper's scaling results (Fig. 3) and wall-time distribution (Fig. 4)
were measured on machines we cannot access; this package models them from
first principles, parameterized by Table 1:

* :mod:`repro.perfmodel.machine` -- the two systems' hardware/software
  descriptions (Table 1 verbatim) plus derived quantities;
* :mod:`repro.perfmodel.workmodel` -- memory-traffic / kernel-launch /
  reduction counts of one time step of the P_N-P_N solver, phase by phase,
  with the same structure as the real Python solver in ``repro.core``;
* :mod:`repro.perfmodel.network` -- latency/bandwidth cost of halo
  exchanges and log-P allreduces;
* :mod:`repro.perfmodel.scaling` -- strong-scaling sweeps (Fig. 3) with
  the overlapped-preconditioner flag as an ablation;
* :mod:`repro.perfmodel.breakdown` -- the per-phase wall-time distribution
  (Fig. 4).
"""

from repro.perfmodel.machine import MachineSpec, LUMI, LEONARDO, platform_table
from repro.perfmodel.network import NetworkModel
from repro.perfmodel.workmodel import SEMWorkModel, PhaseCost
from repro.perfmodel.scaling import StrongScalingStudy, ScalingPoint
from repro.perfmodel.breakdown import walltime_breakdown

__all__ = [
    "MachineSpec",
    "LUMI",
    "LEONARDO",
    "platform_table",
    "NetworkModel",
    "SEMWorkModel",
    "PhaseCost",
    "StrongScalingStudy",
    "ScalingPoint",
    "walltime_breakdown",
]
