"""Wall-time distribution of one time step (Fig. 4)."""

from __future__ import annotations

from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.network import NetworkModel
from repro.perfmodel.workmodel import SEMWorkModel

__all__ = ["walltime_breakdown", "render_breakdown"]


def walltime_breakdown(
    machine: MachineSpec,
    n_gpus: int,
    n_elements: int = 108_000_000,
    work: SEMWorkModel | None = None,
) -> dict[str, float]:
    """Fraction of the step time per phase (the Fig. 4 pie chart).

    The paper reports the 16,384-GCD LUMI configuration with pressure
    constituting more than 85% of a time step.
    """
    work = work if work is not None else SEMWorkModel()
    net = NetworkModel(machine)
    ne_local = n_elements / n_gpus
    costs = work.step_costs(ne_local, machine.device, net, n_gpus)
    phases = ("pressure", "velocity", "temperature", "advection")
    totals = {k: work.phase_total_us(costs[k]) for k in phases}
    grand = sum(totals.values())
    return {k: v / grand for k, v in totals.items()}


def render_breakdown(fractions: dict[str, float], title: str = "") -> str:
    """ASCII bar rendering of a phase distribution."""
    lines = [title] if title else []
    for k, v in sorted(fractions.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(round(v * 50))
        lines.append(f"  {k:<12s} {v:6.1%} |{bar}")
    return "\n".join(lines)
