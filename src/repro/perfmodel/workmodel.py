"""Per-step work model of the P_N-P_N solver.

Counts memory traffic (in "field passes": one read+write sweep of a
``nelv * lx^3`` double field), kernel launches, global reductions and halo
exchanges for every phase of one time step, with the same algorithmic
structure as ``repro.core``:

* pressure: GMRES iterations, each = Poisson ax + gather-scatter +
  the hybrid Schwarz preconditioner (fine FDM smoother on extended arrays
  + fixed-iteration coarse solve) + orthogonalization vector work;
* velocity: 3 Helmholtz components, Jacobi-CG iterations;
* temperature: 1 Helmholtz, Jacobi-CG iterations;
* advection/dealiasing: interpolation to the 3/2 grid and back for 4
  convected fields plus BDF/EXT right-hand-side assembly.

Default iteration counts reflect the production regime the paper reports
(pressure dominating at > 85% of the step, Fig. 4).  They are inputs, not
truths -- the benches print them alongside the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import GpuModel
from repro.perfmodel.network import NetworkModel

__all__ = ["SEMWorkModel", "PhaseCost"]


@dataclass
class PhaseCost:
    """Cost of one phase of a step on one GPU, in microseconds."""

    name: str
    compute_us: float
    launch_us: float
    halo_us: float
    allreduce_us: float

    @property
    def total_us(self) -> float:
        # Device compute overlaps with launch overhead only when the queue
        # is deep; take the max of throughput- and latency-bound estimates
        # plus the host-blocking communication.
        return max(self.compute_us, self.launch_us) + self.halo_us + self.allreduce_us


@dataclass
class SEMWorkModel:
    """Traffic/launch/reduction counts per time step."""

    lx: int = 8
    pressure_iterations: int = 50
    velocity_iterations: int = 3
    temperature_iterations: int = 3
    coarse_cg_iterations: int = 10
    bandwidth_efficiency: float = 0.75  # achieved fraction of peak HBM BW
    overlap_preconditioner: bool = True

    # passes per operator application (read+write sweeps of one field).
    ax_passes: float = 9.0        # u, w, 6 metric tensors, D reuse
    gs_passes: float = 1.0        # face-data heavy, ~one field equivalent
    vector_passes: float = 6.0    # axpy/dot/norm bookkeeping per iteration

    def field_bytes(self, ne_local: float) -> float:
        """Bytes of one read+write sweep of a local field."""
        return 2.0 * 8.0 * ne_local * self.lx**3

    # -- per-phase traffic ------------------------------------------------------

    def schwarz_passes(self) -> float:
        """Fine smoother: ~11 sweeps on (lx+2)^3 extended arrays."""
        scale = ((self.lx + 2) / self.lx) ** 3
        return 11.0 * scale

    def pressure_traffic(self, ne_local: float) -> tuple[float, float]:
        """(smoother+krylov bytes, coarse bytes) per step on one GPU."""
        per_it = self.ax_passes + self.gs_passes + self.vector_passes + self.schwarz_passes()
        coarse_bytes_per_it = self.coarse_cg_iterations * 4 * 2.0 * 8.0 * ne_local * 9
        main = self.pressure_iterations * per_it * self.field_bytes(ne_local)
        coarse = self.pressure_iterations * coarse_bytes_per_it
        return main, coarse

    def helmholtz_traffic(self, ne_local: float, iterations: int, components: int) -> float:
        per_it = self.ax_passes + self.gs_passes + self.vector_passes + 1.0  # +jacobi
        return components * iterations * per_it * self.field_bytes(ne_local)

    def advection_traffic(self, ne_local: float) -> float:
        # 4 convected fields; interpolate field + 3 reference derivatives to
        # the 1.5x grid, pointwise work there, project back, plus BDF/EXT
        # axpys on the coarse grid.
        fine_scale = 1.5**3
        per_field = (5.0 * fine_scale + 4.0) + 6.0
        return 4.0 * per_field * self.field_bytes(ne_local)

    # -- kernel launches ----------------------------------------------------------

    def pressure_launches(self) -> tuple[int, int]:
        """(main-path launches, coarse-path launches) per step."""
        main = self.pressure_iterations * (1 + 2 + 11 + 6)
        coarse = self.pressure_iterations * self.coarse_cg_iterations * 3
        return main, coarse

    def helmholtz_launches(self, iterations: int, components: int) -> int:
        return components * iterations * (1 + 2 + 1 + 6)

    # -- reductions -----------------------------------------------------------------

    def pressure_allreduces(self) -> tuple[int, int]:
        """(GMRES-path, coarse-path) blocking allreduces per step."""
        # GMRES: one norm per iteration plus Gram-Schmidt dots batched ~2.
        main = self.pressure_iterations * 3
        coarse = self.pressure_iterations * self.coarse_cg_iterations * 2
        return main, coarse

    # -- assembled phase costs ----------------------------------------------------------

    def halo_bytes(self, ne_local: float) -> float:
        """Shared-face data of one gather-scatter on one GPU."""
        side = max(1.0, ne_local ** (1.0 / 3.0))
        n_face_elements = 6.0 * side**2
        return n_face_elements * self.lx**2 * 8.0

    def step_costs(
        self,
        ne_local: float,
        device: GpuModel,
        net: NetworkModel,
        n_ranks: int,
    ) -> dict[str, PhaseCost]:
        """Phase costs of one step on one GPU of an ``n_ranks`` job."""
        bw = device.peak_bandwidth_gbs * 1e9 * self.bandwidth_efficiency

        def us(nbytes: float) -> float:
            return nbytes / bw * 1e6

        halo_per_gs = net.halo_exchange_us(self.halo_bytes(ne_local))
        red = net.allreduce_us(n_ranks)

        # Pressure.
        main_bytes, coarse_bytes = self.pressure_traffic(ne_local)
        main_l, coarse_l = self.pressure_launches()
        main_r, coarse_r = self.pressure_allreduces()
        gs_count = self.pressure_iterations * 2  # ax + smoother
        main = PhaseCost(
            "pressure_main",
            us(main_bytes),
            main_l * device.launch_overhead_us,
            gs_count * halo_per_gs,
            main_r * red,
        )
        coarse = PhaseCost(
            "pressure_coarse",
            us(coarse_bytes),
            coarse_l * device.launch_overhead_us,
            self.pressure_iterations * halo_per_gs * 0.1,  # tiny vertex halos
            coarse_r * red,
        )
        if self.overlap_preconditioner:
            pressure_total = max(main.total_us, coarse.total_us) + 0.05 * min(
                main.total_us, coarse.total_us
            )
        else:
            pressure_total = main.total_us + coarse.total_us
        pressure = PhaseCost(
            "pressure",
            main.compute_us + coarse.compute_us,
            main.launch_us + coarse.launch_us,
            main.halo_us + coarse.halo_us,
            main.allreduce_us + coarse.allreduce_us,
        )
        # Override the derived total with the schedule-aware one.
        pressure._total_override = pressure_total

        vel = PhaseCost(
            "velocity",
            us(self.helmholtz_traffic(ne_local, self.velocity_iterations, 3)),
            self.helmholtz_launches(self.velocity_iterations, 3) * device.launch_overhead_us,
            3 * self.velocity_iterations * halo_per_gs,
            3 * self.velocity_iterations * 2 * red,
        )
        temp = PhaseCost(
            "temperature",
            us(self.helmholtz_traffic(ne_local, self.temperature_iterations, 1)),
            self.helmholtz_launches(self.temperature_iterations, 1) * device.launch_overhead_us,
            self.temperature_iterations * halo_per_gs,
            self.temperature_iterations * 2 * red,
        )
        adv = PhaseCost(
            "advection",
            us(self.advection_traffic(ne_local)),
            60 * device.launch_overhead_us,
            4 * halo_per_gs,
            0.0,
        )
        return {
            "pressure": pressure,
            "pressure_main": main,
            "pressure_coarse": coarse,
            "velocity": vel,
            "temperature": temp,
            "advection": adv,
        }

    @staticmethod
    def phase_total_us(cost: PhaseCost) -> float:
        """Total including any schedule-aware override."""
        return getattr(cost, "_total_override", cost.total_us)

    def step_time_us(
        self,
        ne_local: float,
        device: GpuModel,
        net: NetworkModel,
        n_ranks: int,
    ) -> float:
        """Whole-step time on one GPU (all ranks are symmetric)."""
        costs = self.step_costs(ne_local, device, net, n_ranks)
        return sum(
            self.phase_total_us(costs[k])
            for k in ("pressure", "velocity", "temperature", "advection")
        )
