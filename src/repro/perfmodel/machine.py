"""Machine descriptions: Table 1 of the paper, plus derived quantities."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import A100, MI250X_GCD, GpuModel

__all__ = ["MachineSpec", "LUMI", "LEONARDO", "platform_table"]


@dataclass(frozen=True)
class MachineSpec:
    """One experimental platform (a row set of Table 1).

    ``n_logical_gpus`` counts scheduling units as the paper does: one GCD
    on AMD MI250X, one full device on NVIDIA A100.
    """

    name: str
    device: GpuModel
    peak_tflops_table: float  # per *GPU* as printed in Table 1
    peak_bw_table: float  # GB/s per GPU as printed
    n_logical_gpus: int
    gpus_per_node: int
    interconnect: str
    nic_description: str
    node_injection_gbs: float  # aggregate NIC bandwidth per node, GB/s
    network_latency_us: float
    mpi: str
    compiler: str
    gpu_driver: str
    runtime: str
    rmax_pflops: float
    top500_rank_nov22: int

    @property
    def n_nodes(self) -> int:
        return self.n_logical_gpus // self.gpus_per_node

    @property
    def injection_per_gpu_gbs(self) -> float:
        """NIC bandwidth share of one logical GPU."""
        return self.node_injection_gbs / self.gpus_per_node

    @property
    def machine_balance_bytes_per_flop(self) -> float:
        """Memory bytes per FP64 flop at peak -- why SEM must be matrix-free."""
        return self.device.peak_bandwidth_gbs / (self.device.peak_fp64_tflops * 1e3)


# LUMI (CSC, Finland): HPE Cray EX, AMD MI250X, Slingshot 11.
LUMI = MachineSpec(
    name="LUMI",
    device=MI250X_GCD,
    peak_tflops_table=47.9,
    peak_bw_table=3300.0,
    # Table 1 counts 10240 MI250X *modules*; each exposes two GCDs, and the
    # paper's "logical GPUs" are GCDs (16384 GCDs = 80% of the machine).
    n_logical_gpus=20480,
    gpus_per_node=8,  # 4 MI250X modules = 8 GCDs per node
    interconnect="HPE Slingshot 11",
    nic_description="200 GbE NICs (4x200 Gb/s)",
    node_injection_gbs=100.0,  # 4 x 200 Gb/s = 100 GB/s
    network_latency_us=2.0,
    mpi="Cray MPICH 8.1.18",
    compiler="CCE 14.0.2",
    gpu_driver="5.16.9.22.20",
    runtime="ROCm 5.2.3",
    rmax_pflops=309.10,
    top500_rank_nov22=3,
)

# Leonardo (CINECA, Italy): Atos BullSequana XH2000, custom A100, HDR.
LEONARDO = MachineSpec(
    name="Leonardo",
    device=A100,
    peak_tflops_table=9.7,
    peak_bw_table=1550.0,
    n_logical_gpus=13824,
    gpus_per_node=4,
    interconnect="Nvidia HDR",
    nic_description="2x(2x100 Gb/s)",
    node_injection_gbs=50.0,  # 2 x (2 x 100 Gb/s) = 50 GB/s
    network_latency_us=1.5,
    mpi="OpenMPI 4.1.4",
    compiler="GCC 8.5.0",
    gpu_driver="520.61.05",
    runtime="CUDA 11.8",
    rmax_pflops=174.70,
    top500_rank_nov22=4,
)


def platform_table() -> str:
    """Render Table 1 ("Hardware and software details...") from the specs."""
    rows = [
        ("System", lambda m: m.name),
        ("Computing device", lambda m: m.device.name.replace(" (GCD)", "")),
        ("Peak TFlop FP64/s", lambda m: f"{m.peak_tflops_table:g}"),
        ("Peak BW/s (GB)", lambda m: f"{m.peak_bw_table:g}"),
        ("No. devices", lambda m: "10240" if m.name == "LUMI" else str(m.n_logical_gpus)),
        ("Interconnect", lambda m: m.interconnect),
        ("NICs", lambda m: m.nic_description),
        ("MPI", lambda m: m.mpi),
        ("Compiler", lambda m: m.compiler),
        ("GPU Driver", lambda m: m.gpu_driver),
        ("CUDA/ROCm", lambda m: m.runtime),
    ]
    machines = (LUMI, LEONARDO)
    w0 = max(len(r[0]) for r in rows)
    w = [max(len(f(m)) for r, f in rows) for m in machines]
    lines = []
    header = f"{'':{w0}} | " + " | ".join(
        f"{m.name:{wi}}" for m, wi in zip(machines, w)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, f in rows:
        lines.append(
            f"{label:{w0}} | " + " | ".join(f"{f(m):{wi}}" for m, wi in zip(machines, w))
        )
    return "\n".join(lines)
