"""Strong-scaling study (Fig. 3) and its ablations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.network import NetworkModel
from repro.perfmodel.workmodel import SEMWorkModel

__all__ = ["ScalingPoint", "StrongScalingStudy"]


@dataclass
class ScalingPoint:
    """One point of a strong-scaling series."""

    n_gpus: int
    elements_per_gpu: float
    time_per_step_s: float
    parallel_efficiency: float


@dataclass
class StrongScalingStudy:
    """Average time per step vs. GPU count on one machine.

    Defaults match the paper's benchmark case: the 108M-element, degree-7
    RBC mesh at Ra = 1e15 ("37B unique grid points and more than 148B
    degrees of freedom").
    """

    machine: MachineSpec
    n_elements: int = 108_000_000
    work: SEMWorkModel = field(default_factory=SEMWorkModel)

    def time_per_step(self, n_gpus: int) -> float:
        """Modelled average time per step (seconds)."""
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        net = NetworkModel(self.machine)
        ne_local = self.n_elements / n_gpus
        return self.work.step_time_us(ne_local, self.machine.device, net, n_gpus) * 1e-6

    def sweep(self, gpu_counts: list[int]) -> list[ScalingPoint]:
        """Series of scaling points with efficiencies relative to the first."""
        if not gpu_counts:
            return []
        base = min(gpu_counts)
        t_base = self.time_per_step(base)
        points = []
        for p in sorted(gpu_counts):
            t = self.time_per_step(p)
            eff = (t_base * base) / (t * p)
            points.append(
                ScalingPoint(
                    n_gpus=p,
                    elements_per_gpu=self.n_elements / p,
                    time_per_step_s=t,
                    parallel_efficiency=eff,
                )
            )
        return points

    def efficiency_frontier(
        self, target_efficiency: float = 0.95, max_gpus: int | None = None
    ) -> int:
        """Largest power-of-two GPU count keeping efficiency >= target.

        The paper's headline: near-perfect efficiency down to < 7,000
        elements per logical GPU.
        """
        limit = max_gpus or self.machine.n_logical_gpus
        base = 256
        t_base = self.time_per_step(base)
        best = base
        p = base
        while p * 2 <= limit:
            p *= 2
            eff = (t_base * base) / (self.time_per_step(p) * p)
            if eff < target_efficiency:
                break
            best = p
        return best

    def paper_series(self) -> list[ScalingPoint]:
        """The GPU counts of Fig. 3 for this machine."""
        if self.machine.name == "LUMI":
            return self.sweep([4096, 8192, 16384])
        return self.sweep([3456, 6912])

    def render(self, points: list[ScalingPoint]) -> str:
        """Text rendering of one scaling series."""
        lines = [
            f"{self.machine.name}: strong scaling, {self.n_elements / 1e6:.0f}M elements, "
            f"lx={self.work.lx} "
            f"({'overlapped' if self.work.overlap_preconditioner else 'serial'} preconditioner)",
            f"{'GPUs':>7} {'elem/GPU':>10} {'t/step [s]':>12} {'efficiency':>11}",
        ]
        for pt in points:
            lines.append(
                f"{pt.n_gpus:>7d} {pt.elements_per_gpu:>10.0f} "
                f"{pt.time_per_step_s:>12.4f} {pt.parallel_efficiency:>10.1%}"
            )
        return "\n".join(lines)
