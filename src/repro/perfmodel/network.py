"""Network cost models: halo exchanges and log-P reductions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.machine import MachineSpec

__all__ = ["NetworkModel"]


@dataclass
class NetworkModel:
    """Alpha-beta model on top of a machine's interconnect parameters.

    ``alpha`` is the per-message latency, ``beta`` the inverse bandwidth of
    one GPU's share of the node injection bandwidth.  Reductions follow the
    standard ``2 log2(P)`` latency-dominated tree/butterfly estimate with a
    small-byte payload.
    """

    machine: MachineSpec
    software_overhead_us: float = 2.0  # MPI stack + GPU-aware staging cost
    intra_node_fraction: float = 0.5  # halo traffic staying on node links

    @property
    def alpha_us(self) -> float:
        return self.machine.network_latency_us + self.software_overhead_us

    @property
    def beta_us_per_byte(self) -> float:
        return 1.0 / (self.machine.injection_per_gpu_gbs * 1e9) * 1e6

    def message_us(self, nbytes: float) -> float:
        """One point-to-point message."""
        return self.alpha_us + nbytes * self.beta_us_per_byte

    def halo_exchange_us(self, nbytes_total: float, n_neighbors: int = 6) -> float:
        """Gather-scatter network phase: neighbor messages, overlapping.

        Roughly half the shared faces live on intra-node links (NVLink /
        Infinity Fabric) an order of magnitude faster than the NIC share;
        the NIC-bound remainder serializes on the injection bandwidth.
        """
        if n_neighbors <= 0:
            return 0.0
        nic_bytes = nbytes_total * (1.0 - self.intra_node_fraction)
        intra_bytes = nbytes_total * self.intra_node_fraction
        intra_bw_us_per_byte = self.beta_us_per_byte / 10.0
        return (
            self.alpha_us * np.log2(1 + n_neighbors)
            + nic_bytes * self.beta_us_per_byte
            + intra_bytes * intra_bw_us_per_byte
        )

    def allreduce_us(self, n_ranks: int, nbytes: float = 8.0) -> float:
        """Small allreduce over ``n_ranks``.

        One software/staging overhead per call plus a hardware tree whose
        per-hop latency is the switch traversal (a fraction of the end-to-
        end message latency) -- matching the 10-20 us scale measured for
        8-byte allreduces on Slingshot/HDR class fabrics at 10k+ ranks.
        """
        if n_ranks <= 1:
            return 0.0
        hop_us = self.machine.network_latency_us / 4.0
        hops = 2.0 * np.log2(n_ranks)
        return self.software_overhead_us + hops * hop_us + 2.0 * nbytes * self.beta_us_per_byte
