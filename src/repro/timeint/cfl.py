"""Courant-number estimation for the explicit advection terms.

The EXT-k treatment of advection bounds the usable time step by a CFL
condition; in SEM codes the effective grid spacing is the (nonuniform) GLL
node spacing, which shrinks like ``1/N^2`` near element boundaries.  The
estimate here uses the per-direction reference-space velocities so it is
correct on deformed elements.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.sem.quadrature import gll_points_weights
from repro.sem.space import FunctionSpace
from repro.statcheck.contracts import FIELD, contract

__all__ = ["courant_number", "max_stable_dt"]

FloatArray = npt.NDArray[np.float64]


def _reference_spacings(lx: int) -> FloatArray:
    """Distance to the nearest GLL neighbour for each of the ``lx`` nodes."""
    x, _ = gll_points_weights(lx)
    x = np.asarray(x)
    d = np.empty(lx)
    d[0] = x[1] - x[0]
    d[-1] = x[-1] - x[-2]
    d[1:-1] = np.minimum(x[1:-1] - x[:-2], x[2:] - x[1:-1])
    return d


@contract(ux=FIELD, uy=FIELD, uz=FIELD)
def courant_number(
    space: FunctionSpace,
    ux: FloatArray,
    uy: FloatArray,
    uz: FloatArray,
    dt: float,
) -> float:
    """Maximum local Courant number ``dt * |u_ref| / d_ref``.

    The velocity is transformed to reference space (``u . grad r`` etc.) so
    that the comparison against the reference GLL spacing accounts for both
    element size and deformation.
    """
    c = space.coef
    ur = np.abs(ux * c.drdx + uy * c.drdy + uz * c.drdz)
    us = np.abs(ux * c.dsdx + uy * c.dsdy + uz * c.dsdz)
    ut = np.abs(ux * c.dtdx + uy * c.dtdy + uz * c.dtdz)
    d = _reference_spacings(space.lx)
    cfl_r = ur / d[None, None, None, :]
    cfl_s = us / d[None, None, :, None]
    cfl_t = ut / d[None, :, None, None]
    return float(dt * np.max(cfl_r + cfl_s + cfl_t))


def max_stable_dt(
    space: FunctionSpace,
    ux: FloatArray,
    uy: FloatArray,
    uz: FloatArray,
    cfl_target: float = 0.5,
) -> float:
    """Largest ``dt`` keeping the Courant number below ``cfl_target``."""
    c1 = courant_number(space, ux, uy, uz, 1.0)
    if c1 <= 0.0:
        return float("inf")
    return cfl_target / c1
