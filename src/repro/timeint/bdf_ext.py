"""BDF/EXT coefficient tables and the order-ramping time scheme.

With constant step size the k-step BDF discretization of ``du/dt = f`` is

    (1/dt) * (b0 u^{n+1} - sum_{j=1..k} b_j u^{n+1-j}) = f^{n+1},

and the order-k extrapolation of an explicit term is

    f^{n+1} ~= sum_{q=1..k} a_q f^{n+1-q}.

Both sets below follow that sign convention (all ``b_j`` for ``j >= 1``
are *added* to the right-hand side).
"""

from __future__ import annotations

__all__ = ["BDF_COEFFS", "EXT_COEFFS", "TimeScheme"]

# BDF_COEFFS[k] = (b0, [b1, ..., bk]).
BDF_COEFFS: dict[int, tuple[float, tuple[float, ...]]] = {
    1: (1.0, (1.0,)),
    2: (1.5, (2.0, -0.5)),
    3: (11.0 / 6.0, (3.0, -1.5, 1.0 / 3.0)),
}

# EXT_COEFFS[k] = (a1, ..., ak).
EXT_COEFFS: dict[int, tuple[float, ...]] = {
    1: (1.0,),
    2: (2.0, -1.0),
    3: (3.0, -3.0, 1.0),
}


class TimeScheme:
    """Order-ramped BDF/EXT coefficients for a constant time step.

    The first step uses order 1, the second order 2, and from the third
    step on the target order (default 3, as in the paper).  Query the
    active coefficients with :attr:`bdf` and :attr:`ext` after calling
    :meth:`advance` at the *end* of every step.
    """

    def __init__(self, order: int = 3) -> None:
        if order not in BDF_COEFFS:
            raise ValueError(f"unsupported time order {order}; supported: 1, 2, 3")
        self.target_order = order
        self.step_count = 0

    @property
    def order(self) -> int:
        """Order in effect for the *next* step."""
        return min(self.step_count + 1, self.target_order)

    @property
    def bdf(self) -> tuple[float, tuple[float, ...]]:
        """``(b0, (b1, ..., bk))`` for the next step."""
        return BDF_COEFFS[self.order]

    @property
    def ext(self) -> tuple[float, ...]:
        """``(a1, ..., ak)`` for the next step."""
        return EXT_COEFFS[self.order]

    def advance(self) -> None:
        """Note that one step was completed (advances the order ramp)."""
        self.step_count += 1

    def jump_start(self) -> None:
        """Skip the order ramp: the next step runs at the target order.

        Valid only when the caller has primed the multistep histories with
        ``target_order`` consistent levels (e.g. from an exact solution in
        an MMS study, or from a restart file).  Starting at full order with
        zero-filled history would poison the first steps instead.
        """
        self.step_count = max(self.step_count, self.target_order - 1)

    @staticmethod
    def verify_consistency(order: int) -> float:
        """Max consistency defect of the tables (exactness on polynomials).

        With ``dt = 1`` and the new level at ``t = 1``: BDF-k must satisfy
        ``b0 * 1^m - sum_j b_j (1-j)^m == m`` (the derivative of ``t^m`` at
        ``t = 1``) for ``m <= k``, and EXT-k must reproduce
        ``sum_q a_q (1-q)^m == 1`` for ``m <= k - 1``.  Returns the worst
        violation -- an executable proof of the coefficient tables.
        """
        b0, bs = BDF_COEFFS[order]
        a = EXT_COEFFS[order]
        worst = 0.0
        for m in range(order + 1):
            val = b0 * 1.0**m - sum(
                bj * (1.0 - j) ** m for j, bj in enumerate(bs, start=1)
            )
            worst = max(worst, abs(val - float(m)))
        for m in range(order):
            val = sum(aq * (1.0 - q) ** m for q, aq in enumerate(a, start=1))
            worst = max(worst, abs(val - 1.0))
        return worst
