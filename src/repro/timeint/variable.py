"""Variable-step BDF/EXT coefficients.

Production runs adapt the time step to the CFL condition; multistep
coefficients must then be rebuilt from the actual step-size history.  Both
sets follow from Lagrange interpolation over the time levels

    tau_0 = 0 (the new level),  tau_j = -(dt_1 + ... + dt_j),

* BDF: the derivative of the interpolant through ``u(tau_0..tau_k)`` at
  ``tau_0``, normalized to the code's convention
  ``u'(t^{n+1}) ~ (1/dt_1) (b0 u^{n+1} - sum b_j u^{n+1-j})``;
* EXT: the values at ``tau_0`` of the Lagrange basis over the *previous*
  levels ``tau_1..tau_k``.

With equal steps these reduce exactly to the classic tables (tested).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.timeint.bdf_ext import BDF_COEFFS

__all__ = ["variable_bdf", "variable_ext", "VariableTimeScheme"]

FloatArray = npt.NDArray[np.float64]


def _lagrange_deriv_at(x0: float, nodes: FloatArray) -> FloatArray:
    """Derivative of each Lagrange cardinal function at ``x0``."""
    n = len(nodes)
    out = np.zeros(n)
    for j in range(n):
        total = 0.0
        for m in range(n):
            if m == j:
                continue
            prod = 1.0 / (nodes[j] - nodes[m])
            for q in range(n):
                if q in (j, m):
                    continue
                prod *= (x0 - nodes[q]) / (nodes[j] - nodes[q])
            total += prod
        out[j] = total
    return out


def _lagrange_value_at(x0: float, nodes: FloatArray) -> FloatArray:
    """Value of each Lagrange cardinal function at ``x0``."""
    n = len(nodes)
    out = np.ones(n)
    for j in range(n):
        for m in range(n):
            if m == j:
                continue
            out[j] *= (x0 - nodes[m]) / (nodes[j] - nodes[m])
    return out


def _time_levels(dts: list[float]) -> FloatArray:
    taus = [0.0]
    acc = 0.0
    for dt in dts:
        acc -= dt
        taus.append(acc)
    return np.array(taus)


def variable_bdf(dts: list[float]) -> tuple[float, tuple[float, ...]]:
    """``(b0, (b1...bk))`` for step history ``dts = [dt_1, ..., dt_k]``.

    ``dt_1`` is the step being taken (newest); ``dt_k`` the oldest.
    """
    if not dts or any(dt <= 0 for dt in dts):
        raise ValueError("step history must be non-empty and positive")
    taus = _time_levels(dts)
    c = _lagrange_deriv_at(0.0, taus)
    dt1 = dts[0]
    b0 = c[0] * dt1
    bs = tuple(-c[j] * dt1 for j in range(1, len(taus)))
    return float(b0), tuple(float(b) for b in bs)


def variable_ext(dts: list[float]) -> tuple[float, ...]:
    """``(a1, ..., ak)`` extrapolating the previous levels to ``t^{n+1}``."""
    if not dts or any(dt <= 0 for dt in dts):
        raise ValueError("step history must be non-empty and positive")
    taus = _time_levels(dts)[1:]
    return tuple(float(a) for a in _lagrange_value_at(0.0, taus))


class VariableTimeScheme:
    """Order-ramped BDF/EXT with a step-size history.

    Drop-in alternative to :class:`~repro.timeint.bdf_ext.TimeScheme`: call
    :meth:`set_step` *before* each step with the dt about to be taken, read
    :attr:`bdf` / :attr:`ext`, then :meth:`advance` after the step.
    """

    def __init__(self, order: int = 3) -> None:
        if order not in BDF_COEFFS:
            raise ValueError(f"unsupported time order {order}")
        self.target_order = order
        self.step_count = 0
        self._dts: list[float] = []  # newest first, completed steps
        self._next_dt: float | None = None

    @property
    def order(self) -> int:
        return min(self.step_count + 1, self.target_order)

    def set_step(self, dt: float) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._next_dt = dt

    def _history(self) -> list[float]:
        if self._next_dt is None:
            raise RuntimeError("call set_step(dt) before reading coefficients")
        k = self.order
        hist = [self._next_dt]
        # Previous levels are separated by the *completed* steps.
        hist += self._dts[: k - 1]
        return hist

    @property
    def bdf(self) -> tuple[float, tuple[float, ...]]:
        return variable_bdf(self._history())

    @property
    def ext(self) -> tuple[float, ...]:
        return variable_ext(self._history())

    def advance(self) -> None:
        if self._next_dt is None:
            raise RuntimeError("advance() without set_step()")
        self._dts.insert(0, self._next_dt)
        del self._dts[self.target_order :]
        self._next_dt = None
        self.step_count += 1

    def jump_start(self, dts: list[float]) -> None:
        """Skip the order ramp with a known completed-step history.

        ``dts`` lists the ``target_order - 1`` steps *preceding* the first
        one about to be taken, newest first.  As with
        :meth:`TimeScheme.jump_start <repro.timeint.bdf_ext.TimeScheme.jump_start>`,
        the caller must have primed the solution/forcing histories at the
        matching time levels.
        """
        if len(dts) < self.target_order - 1:
            raise ValueError(
                f"need {self.target_order - 1} completed steps to jump-start "
                f"order {self.target_order}, got {len(dts)}"
            )
        if any(dt <= 0 for dt in dts):
            raise ValueError("step history must be positive")
        self._dts = [float(dt) for dt in dts[: self.target_order]]
        self.step_count = max(self.step_count, self.target_order - 1)
