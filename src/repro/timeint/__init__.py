"""Time integration: mixed implicit-explicit BDF/EXT schemes.

The paper integrates with "a mixed implicit-explicit scheme, combining an
extrapolation scheme and a backwards difference scheme, both of order 3":
diffusion is treated implicitly with BDF-k, advection and buoyancy
explicitly with EXT-k, with an order ramp (1, 2, 3) over the first steps
because higher-order multistep schemes need history.
"""

from repro.timeint.bdf_ext import BDF_COEFFS, EXT_COEFFS, TimeScheme
from repro.timeint.cfl import courant_number, max_stable_dt
from repro.timeint.variable import VariableTimeScheme, variable_bdf, variable_ext

__all__ = [
    "BDF_COEFFS",
    "EXT_COEFFS",
    "TimeScheme",
    "courant_number",
    "max_stable_dt",
    "VariableTimeScheme",
    "variable_bdf",
    "variable_ext",
]
