"""Nodal <-> modal Legendre transforms of elementwise SEM data (eq. (2)).

The modal basis is the orthonormalized Legendre tensor-product basis on the
reference element; the transform matrices are the (exact) inverse of the
Vandermonde matrix and the Vandermonde matrix itself, applied along the
three tensor directions with batched ``matmul`` -- the same kernel shape as
every other operator in the code, which is what makes the compression
runnable synchronously at simulation time.
"""

from __future__ import annotations

import numpy as np

from repro.sem.basis import vandermonde_pair as _vandermonde_pair
from repro.sem.dealias import interp3

__all__ = ["to_modal", "to_nodal", "modal_energy"]


def to_modal(u: np.ndarray) -> np.ndarray:
    """Modal coefficients ``uh`` of nodal data ``u`` (per element)."""
    lx = u.shape[-1]
    _, vinv = _vandermonde_pair(lx)
    return interp3(u, vinv)


def to_nodal(uh: np.ndarray) -> np.ndarray:
    """Nodal values from modal coefficients (inverse of :func:`to_modal`)."""
    lx = uh.shape[-1]
    v, _ = _vandermonde_pair(lx)
    return interp3(uh, v)


def modal_energy(uh: np.ndarray) -> np.ndarray:
    """Per-element modal energy ``sum uh^2`` (reference-element L^2 norm^2).

    Because the modes are L^2-orthonormal on the reference cube, this is
    Parseval's identity for the element interpolant; multiplied by the
    element volume factor it approximates the physical L^2 energy.
    """
    return np.sum(uh.reshape(uh.shape[0], -1) ** 2, axis=1)
