"""Error-bounded truncation of modal coefficients.

Per element, the smallest-magnitude coefficients are dropped while the
cumulative dropped energy stays below ``(eps * ||u||_elem)^2``; by
Parseval this bounds the per-element (and hence global) relative L^2
reconstruction error of the *truncation stage* by ``eps``.  Elements whose
energy is negligible relative to the global field are truncated against
the global scale instead, so that near-quiescent regions (e.g. the
cylinder core at early times) do not keep noise-level modes alive.
"""

from __future__ import annotations

import numpy as np

__all__ = ["truncation_mask", "truncate_relative"]


def truncation_mask(uh: np.ndarray, eps: float, element_volumes: np.ndarray | None = None) -> np.ndarray:
    """Boolean keep-mask for the modal coefficients.

    Parameters
    ----------
    uh:
        ``(nelv, lx, lx, lx)`` modal coefficients.
    eps:
        Relative L^2 error budget of the truncation stage.
    element_volumes:
        Optional per-element volume factors making the energy bookkeeping
        physical on graded meshes; defaults to uniform.
    """
    if eps < 0:
        raise ValueError("error bound must be non-negative")
    nelv = uh.shape[0]
    nmodes = int(np.prod(uh.shape[1:]))
    flat = uh.reshape(nelv, nmodes)
    vol = np.ones(nelv) if element_volumes is None else np.asarray(element_volumes, dtype=np.float64)

    energy = flat**2 * vol[:, None]
    elem_energy = energy.sum(axis=1)
    total_energy = float(elem_energy.sum())
    if total_energy == 0.0:
        return np.zeros(uh.shape, dtype=bool)

    # Budget per element: the max of its own relative budget and its share
    # of the global budget (protects against noise retention in dead zones).
    budget = np.maximum(eps**2 * elem_energy, eps**2 * total_energy / nelv * 1e-6)

    order = np.argsort(energy, axis=1)  # ascending magnitude
    sorted_energy = np.take_along_axis(energy, order, axis=1)
    csum = np.cumsum(sorted_energy, axis=1)
    drop_sorted = csum <= budget[:, None]
    # Map back to the original mode positions.
    drop = np.zeros_like(drop_sorted)
    np.put_along_axis(drop, order, drop_sorted, axis=1)
    keep = ~drop
    return keep.reshape(uh.shape)


def truncate_relative(
    uh: np.ndarray, eps: float, element_volumes: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Truncated coefficients and the keep-mask."""
    keep = truncation_mask(uh, eps, element_volumes)
    out = np.where(keep, uh, 0.0)
    return out, keep
