"""Compressed time-series container: many snapshots, one file.

The paper's motivation for compression is the snapshot *stream* -- "sample
the instantaneous flow frequently, and for a long enough period" -- so the
natural container is a sequence of compressed fields with metadata.  The
format is a simple length-prefixed concatenation of the self-describing
per-field streams plus a JSON footer (name, time, raw size per record),
written incrementally so an in-situ writer never buffers the whole series.
"""

from __future__ import annotations

import io
import json
import pathlib
import struct

import numpy as np

from repro.compression.api import CompressedField, SpectralCompressor

__all__ = ["CompressedSeriesWriter", "read_compressed_series"]

_MAGIC = b"RPRS\x01"


class CompressedSeriesWriter:
    """Appends compressed snapshots to a series file.

    Use as a context manager, or call :meth:`close` to finalize (the JSON
    footer is written at close; an unclosed file is still recoverable
    record-by-record).
    """

    def __init__(self, path: str | pathlib.Path, compressor: SpectralCompressor) -> None:
        self.path = pathlib.Path(path)
        self.compressor = compressor
        self._fh: io.BufferedWriter | None = self.path.open("wb")
        self._fh.write(_MAGIC)
        self._meta: list[dict] = []
        self.total_raw = 0
        self.total_written = len(_MAGIC)

    def append(self, field: np.ndarray, name: str, time: float = 0.0) -> CompressedField:
        """Compress and append one snapshot."""
        if self._fh is None:
            raise RuntimeError("series writer already closed")
        cf = self.compressor.compress(field, name=name, time=time)
        self._fh.write(struct.pack("<Q", len(cf.blob)))
        self._fh.write(cf.blob)
        self._meta.append(
            {"name": name, "time": time, "raw_bytes": cf.raw_bytes,
             "compressed_bytes": cf.compressed_bytes}
        )
        self.total_raw += cf.raw_bytes
        self.total_written += 8 + len(cf.blob)
        return cf

    @property
    def overall_reduction(self) -> float:
        if self.total_raw == 0:
            return 0.0
        return 1.0 - self.total_written / self.total_raw

    def close(self) -> dict:
        """Write the footer and close; returns the series metadata."""
        if self._fh is None:
            raise RuntimeError("series writer already closed")
        footer = json.dumps(self._meta).encode()
        self._fh.write(struct.pack("<Q", 0))  # record terminator
        self._fh.write(footer)
        self._fh.write(struct.pack("<Q", len(footer)))
        self._fh.close()
        self._fh = None
        return {"records": self._meta, "reduction": self.overall_reduction}

    def __enter__(self) -> "CompressedSeriesWriter":
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            self.close()


def read_compressed_series(path: str | pathlib.Path) -> list[tuple[dict, CompressedField]]:
    """Read back a series: list of ``(metadata, CompressedField)`` records."""
    data = pathlib.Path(path).read_bytes()
    if not data.startswith(_MAGIC):
        raise ValueError("not a repro compressed-series file")
    # Footer: last 8 bytes = footer length.
    (footer_len,) = struct.unpack("<Q", data[-8:])
    footer = json.loads(data[-8 - footer_len : -8].decode())

    records = []
    off = len(_MAGIC)
    idx = 0
    while True:
        (blob_len,) = struct.unpack("<Q", data[off : off + 8])
        off += 8
        if blob_len == 0:
            break
        blob = data[off : off + blob_len]
        off += blob_len
        meta = footer[idx]
        records.append(
            (meta, CompressedField(name=meta["name"], blob=blob,
                                   raw_bytes=meta["raw_bytes"], time=meta["time"]))
        )
        idx += 1
    if idx != len(footer):
        raise ValueError("series footer does not match record count")
    return records
