"""In-situ lossy compression of spectral-element fields (Section 5.2).

The pipeline follows the paper exactly:

1. **Transform** -- per-element L^2 projection of the nodal data onto an
   orthonormal Legendre modal basis (eq. (2)).  Turbulence spectra decay,
   so the modal coefficients have far lower variance than the nodal values.
2. **Truncate** -- drop the smallest coefficients subject to a user error
   bound ("Neko removes this information while respecting the error bounds
   specified by the user").
3. **Encode** -- quantize the surviving coefficients and push the stream
   through a lossless entropy coder (zlib), the step whose effectiveness
   the truncation unlocked by reducing the Shannon entropy.

Reconstruction error is measured in the mass-weighted L^2 norm (the RMS
"accounting for the nonuniform nature of the mesh" of Section 6.2).
"""

from repro.compression.transform import to_modal, to_nodal, modal_energy
from repro.compression.truncation import truncate_relative, truncation_mask
from repro.compression.encoder import encode_coefficients, decode_coefficients
from repro.compression.api import CompressedField, SpectralCompressor
from repro.compression.timeseries import CompressedSeriesWriter, read_compressed_series

__all__ = [
    "to_modal",
    "to_nodal",
    "modal_energy",
    "truncate_relative",
    "truncation_mask",
    "encode_coefficients",
    "decode_coefficients",
    "CompressedField",
    "SpectralCompressor",
    "CompressedSeriesWriter",
    "read_compressed_series",
]
