"""User-facing compression API: compressor object and field container."""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np

from repro.compression.encoder import decode_coefficients, encode_coefficients
from repro.compression.transform import to_modal, to_nodal
from repro.compression.truncation import truncate_relative
from repro.sem.space import FunctionSpace

__all__ = ["CompressedField", "SpectralCompressor"]


@dataclass
class CompressedField:
    """A compressed snapshot of one scalar field.

    ``blob`` is the full self-describing byte stream; ``raw_bytes`` the size
    of the uncompressed double-precision nodal data it replaces.
    """

    name: str
    blob: bytes
    raw_bytes: int
    time: float = 0.0

    @property
    def compressed_bytes(self) -> int:
        return len(self.blob)

    @property
    def ratio(self) -> float:
        """Compressed / raw size (smaller is better)."""
        return self.compressed_bytes / self.raw_bytes

    @property
    def reduction(self) -> float:
        """Fraction of storage removed -- the paper's "97% data reduction"."""
        return 1.0 - self.ratio

    def decompress(self) -> np.ndarray:
        """Reconstruct the nodal field."""
        return to_nodal(decode_coefficients(self.blob))

    def save(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_bytes(self.blob)

    @classmethod
    def load(cls, path: str | pathlib.Path, name: str = "field") -> "CompressedField":
        blob = pathlib.Path(path).read_bytes()
        coeffs = decode_coefficients(blob)
        return cls(name=name, blob=blob, raw_bytes=coeffs.size * 8)


class SpectralCompressor:
    """Error-bounded lossy compressor bound to one function space.

    Parameters
    ----------
    space:
        Supplies the element volumes (energy bookkeeping on graded meshes)
        and the mass matrix for the weighted-L^2 error metric.
    error_bound:
        Relative L^2 budget of the truncation stage.  The bound is exact in
        the interpolant (modal) norm; the GLL-quadrature measurement of the
        error can read up to ~1.5x higher when the removed energy sits in
        the top modes, which the collocation rule under-integrates.  The
        paper reports conservative settings of 85-90% reduction for
        high-fidelity post-processing and up to 97% at 2.5% error.
    quant_bits:
        Quantization depth of the lossless stage (16 keeps the quantization
        error well below typical truncation budgets).
    """

    def __init__(
        self,
        space: FunctionSpace,
        error_bound: float = 0.02,
        quant_bits: int = 16,
        zlib_level: int = 6,
    ) -> None:
        self.space = space
        self.error_bound = error_bound
        self.quant_bits = quant_bits
        self.zlib_level = zlib_level
        self._elem_vol = space.coef.mass.reshape(space.nelv, -1).sum(axis=1)

    def compress(self, field: np.ndarray, name: str = "field", time: float = 0.0) -> CompressedField:
        """Transform, truncate and encode one nodal field."""
        if field.shape != self.space.shape:
            raise ValueError(f"field shape {field.shape} != space shape {self.space.shape}")
        uh = to_modal(field)
        uh_t, keep = truncate_relative(uh, self.error_bound, self._elem_vol)
        blob = encode_coefficients(uh_t, keep, self.quant_bits, self.zlib_level)
        return CompressedField(
            name=name, blob=blob, raw_bytes=field.size * 8, time=time
        )

    def reconstruction_error(self, original: np.ndarray, compressed: CompressedField) -> float:
        """Relative mass-weighted L^2 error (the paper's metric)."""
        rec = compressed.decompress()
        num = self.space.norm_l2(rec - original)
        den = self.space.norm_l2(original)
        return num / den if den > 0 else 0.0

    def roundtrip(self, field: np.ndarray) -> tuple[CompressedField, float]:
        """Compress and immediately measure (field stays in memory)."""
        cf = self.compress(field)
        return cf, self.reconstruction_error(field, cf)

    def kept_fraction(self, field: np.ndarray) -> float:
        """Fraction of modal coefficients surviving truncation."""
        uh = to_modal(field)
        _, keep = truncate_relative(uh, self.error_bound, self._elem_vol)
        return float(np.count_nonzero(keep)) / keep.size
