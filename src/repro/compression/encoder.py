"""Lossless encoding of truncated modal coefficients.

The byte stream consists of, per field: a keep-bitmap (1 bit per mode), a
per-element float32 scale, and the surviving coefficients quantized to a
configurable number of bits (default 16) relative to the element scale.
The stream is then zlib-compressed -- after truncation + quantization the
Shannon entropy is low enough for the entropy coder to bite, which is
precisely the paper's argument for why a lossy step must precede the
lossless one on turbulence data.

All sizes reported by this module are real ``len(bytes)`` measurements,
not estimates.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

__all__ = ["encode_coefficients", "decode_coefficients"]

_MAGIC = b"RPRC"
_VERSION = 2


def encode_coefficients(
    uh_truncated: np.ndarray,
    keep: np.ndarray,
    quant_bits: int = 16,
    level: int = 6,
) -> bytes:
    """Serialize truncated modal coefficients to a compressed byte string.

    Parameters
    ----------
    uh_truncated, keep:
        Output of :func:`repro.compression.truncation.truncate_relative`.
    quant_bits:
        Bits per surviving coefficient (8..32; 32 stores exact float32).
    level:
        zlib compression level.
    """
    if not 8 <= quant_bits <= 32:
        raise ValueError("quant_bits must be in [8, 32]")
    nelv = uh_truncated.shape[0]
    lx = uh_truncated.shape[-1]
    flat = uh_truncated.reshape(nelv, -1)
    keep_flat = keep.reshape(nelv, -1)

    scales = np.abs(flat).max(axis=1).astype(np.float32)
    safe = np.where(scales == 0.0, 1.0, scales).astype(np.float64)

    kept_vals = flat[keep_flat]
    kept_elem = np.repeat(np.arange(nelv), keep_flat.sum(axis=1))
    normalized = kept_vals / safe[kept_elem]  # in [-1, 1]

    if quant_bits >= 32:
        payload = normalized.astype(np.float32).tobytes()
        qdtype = b"f"
    else:
        qmax = (1 << (quant_bits - 1)) - 1
        q = np.round(normalized * qmax).astype(np.int32)
        if quant_bits <= 8:
            payload = q.astype(np.int8).tobytes()
            qdtype = b"b"
        elif quant_bits <= 16:
            payload = q.astype(np.int16).tobytes()
            qdtype = b"h"
        else:
            payload = q.tobytes()
            qdtype = b"i"

    bitmap = np.packbits(keep_flat.reshape(-1).astype(np.uint8)).tobytes()
    header = _MAGIC + struct.pack(
        "<BBBxIII", _VERSION, quant_bits, qdtype[0], nelv, lx, int(keep_flat.sum())
    )
    body = header + scales.tobytes() + bitmap + payload
    return zlib.compress(body, level)


def decode_coefficients(blob: bytes) -> np.ndarray:
    """Reconstruct the (truncated, quantized) modal coefficient array."""
    body = zlib.decompress(blob)
    if body[:4] != _MAGIC:
        raise ValueError("not a repro compressed-field stream")
    version, quant_bits, qdtype, nelv, lx, nkept = struct.unpack("<BBBxIII", body[4:20])
    if version != _VERSION:
        raise ValueError(f"unsupported stream version {version}")
    off = 20
    scales = np.frombuffer(body, dtype=np.float32, count=nelv, offset=off).astype(np.float64)
    off += 4 * nelv
    nmodes = lx**3
    nbits_total = nelv * nmodes
    nbytes_bitmap = (nbits_total + 7) // 8
    bits = np.unpackbits(
        np.frombuffer(body, dtype=np.uint8, count=nbytes_bitmap, offset=off)
    )[:nbits_total]
    keep = bits.astype(bool).reshape(nelv, nmodes)
    off += nbytes_bitmap

    ch = chr(qdtype)
    if ch == "f":
        vals = np.frombuffer(body, dtype=np.float32, count=nkept, offset=off).astype(np.float64)
    else:
        dt = {"b": np.int8, "h": np.int16, "i": np.int32}[ch]
        q = np.frombuffer(body, dtype=dt, count=nkept, offset=off).astype(np.float64)
        qmax = (1 << (quant_bits - 1)) - 1
        vals = q / qmax

    safe = np.where(scales == 0.0, 1.0, scales)
    kept_elem = np.repeat(np.arange(nelv), keep.sum(axis=1))
    out = np.zeros((nelv, nmodes))
    out[keep] = vals * safe[kept_elem]
    return out.reshape(nelv, lx, lx, lx)
