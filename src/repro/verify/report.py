"""Verification report: JSON artifact + human-readable table.

The CLI (``python -m repro.verify``) aggregates every convergence study
and equivalence check into one :class:`VerificationReport`.  CI uploads
the JSON as an artifact (so a failed run carries its full evidence) and
prints the table; the exit code is the single-bit summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.verify.convergence import StudyResult
from repro.verify.equivalence import EquivalenceResult

__all__ = ["VerificationReport"]


@dataclass
class VerificationReport:
    """All verification outcomes of one run."""

    studies: list[StudyResult] = field(default_factory=list)
    equivalence: list[EquivalenceResult] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(s.passed for s in self.studies) and all(
            e.passed for e in self.equivalence
        )

    def as_record(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "studies": [s.as_record() for s in self.studies],
            "equivalence": [e.as_record() for e in self.equivalence],
            **({"extra": self.extra} if self.extra else {}),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_record(), indent=indent, sort_keys=False)

    def text_table(self) -> str:
        """Fixed-width summary table of every study and equivalence chain."""
        lines: list[str] = []
        if self.studies:
            lines.append("convergence studies")
            lines.append(
                f"  {'name':<38} {'kind':<4} {'observed':>9} {'expected':>9}  verdict"
            )
            for s in self.studies:
                verdict = "PASS" if s.passed else "FAIL"
                lines.append(
                    f"  {s.name:<38} {s.kind:<4} {s.observed_rate:>9.3f} "
                    f"{s.expected_rate:>9.3f}  {verdict}"
                )
        if self.equivalence:
            lines.append("cross-backend equivalence")
            lines.append(
                f"  {'chain':<38} {'max |diff|':>12} {'tolerance':>10}  verdict"
            )
            for e in self.equivalence:
                verdict = "PASS" if e.passed else "FAIL"
                lines.append(
                    f"  {e.chain:<38} {e.max_divergence:>12.3e} "
                    f"{e.tolerance:>10.1e}  {verdict}"
                )
        lines.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)
