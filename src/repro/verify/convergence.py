"""Convergence studies: sweep a refinement parameter, fit the observed rate.

Three refinement axes, three expected behaviours:

* **p-refinement** (increase ``lx`` at fixed mesh): for analytic solutions
  the SEM error decays *exponentially*, ``err ~ C exp(-sigma lx)``.  We fit
  ``sigma`` as the (negated) slope of ``log err`` against ``lx`` and assert
  a minimum decay rate; an algebraic-order bug (wrong geometric factors,
  quadrature underintegration) flattens this curve unmistakably.
* **h-refinement** (increase the element count at fixed ``lx``): algebraic
  decay ``err ~ C h^r`` with design rate ``r ~ lx`` (theory gives ``p + 1 =
  lx`` for the L^2 error of degree-``p`` elements; superconvergence pushes
  the observed rate slightly above).
* **dt-refinement**: algebraic decay at the design order ``k`` of the
  BDFk/EXTk scheme.

Errors at the round-off floor are excluded from fits (a saturated tail
biases the slope towards zero and would fail a *correct* implementation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.observability.tracer import NULL_TRACER, Tracer

__all__ = [
    "StudyResult",
    "fit_algebraic_order",
    "fit_exponential_rate",
    "ConvergenceStudy",
]

#: Errors below this are considered saturated at round-off and excluded
#: from rate fits.
ROUNDOFF_FLOOR = 1e-12


def _fit_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``ys`` against ``xs`` (no numpy needed)."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit a rate")
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    if sxx == 0.0:
        raise ValueError("refinement parameters are all identical")
    return sxy / sxx


def _filter_floor(
    params: Sequence[float], errors: Sequence[float], floor: float
) -> tuple[list[float], list[float]]:
    kept = [(p, e) for p, e in zip(params, errors) if e > floor]
    if len(kept) < 2:
        # Everything converged to round-off: the study passed maximally;
        # keep the two largest errors so a slope is still defined.
        ranked = sorted(zip(params, errors), key=lambda pe: -pe[1])[:2]
        kept = sorted(ranked)
    return [p for p, _ in kept], [e for _, e in kept]


def fit_algebraic_order(
    hs: Sequence[float], errors: Sequence[float], floor: float = ROUNDOFF_FLOOR
) -> float:
    """Observed order ``r`` of ``err ~ C h^r`` (slope in log--log)."""
    hs_f, errs_f = _filter_floor(hs, errors, floor)
    return _fit_slope([math.log(h) for h in hs_f], [math.log(e) for e in errs_f])


def fit_exponential_rate(
    orders: Sequence[float], errors: Sequence[float], floor: float = ROUNDOFF_FLOOR
) -> float:
    """Observed decay rate ``sigma`` of ``err ~ C exp(-sigma lx)``.

    The slope of ``log err`` against ``lx``, negated so that larger is
    better (spectral convergence shows ``sigma`` of order one or more).
    """
    os_f, errs_f = _filter_floor(orders, errors, floor)
    return -_fit_slope(list(os_f), [math.log(e) for e in errs_f])


@dataclass
class StudyResult:
    """Outcome of one convergence study: samples, fitted rate, verdict."""

    name: str
    kind: str  #: "p" (exponential), "h" or "dt" (algebraic)
    parameters: list[float]
    errors: list[float]
    observed_rate: float
    expected_rate: float
    passed: bool
    detail: dict[str, Any] = field(default_factory=dict)

    def as_record(self) -> dict[str, Any]:
        """JSON-ready representation (consumed by the CLI report)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "parameters": list(self.parameters),
            "errors": list(self.errors),
            "observed_rate": self.observed_rate,
            "expected_rate": self.expected_rate,
            "passed": self.passed,
            **({"detail": self.detail} if self.detail else {}),
        }


class ConvergenceStudy:
    """Run a parameter sweep and fit the observed convergence rate.

    ``case`` maps one refinement parameter to an error (or to a dict of
    named errors, in which case ``select`` picks the one under study).
    The study emits ``verify.study`` / ``verify.case`` tracer spans so a
    full verification run is inspectable in the observability layer like
    any other workload.
    """

    def __init__(
        self,
        name: str,
        case: Callable[[float], float],
        kind: str = "h",
        tracer: Tracer | None = None,
    ) -> None:
        if kind not in ("p", "h", "dt"):
            raise ValueError(f"unknown study kind {kind!r}; use 'p', 'h' or 'dt'")
        self.name = name
        self.case = case
        self.kind = kind
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(self, parameters: Sequence[float], expected_rate: float) -> StudyResult:
        """Sweep ``parameters``, fit the rate, compare to ``expected_rate``.

        For ``kind="p"`` the parameters are polynomial point counts ``lx``
        and the fit is exponential; for ``"h"`` they are mesh sizes ``h``
        (errors must *decrease* with ``h``); for ``"dt"`` they are step
        sizes.  ``passed`` is ``observed >= expected`` -- expected rates
        should already carry the tolerance margin (e.g. ``k - 0.2``).
        """
        errors: list[float] = []
        with self.tracer.span("verify.study", study=self.name, kind=self.kind):
            for p in parameters:
                with self.tracer.span("verify.case", study=self.name, parameter=p):
                    errors.append(float(self.case(p)))
        if self.kind == "p":
            observed = fit_exponential_rate(parameters, errors)
        else:
            observed = fit_algebraic_order(parameters, errors)
        passed = bool(observed >= expected_rate) and all(
            math.isfinite(e) for e in errors
        )
        return StudyResult(
            name=self.name,
            kind=self.kind,
            parameters=[float(p) for p in parameters],
            errors=errors,
            observed_rate=float(observed),
            expected_rate=float(expected_rate),
            passed=passed,
        )
