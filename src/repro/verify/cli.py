"""``python -m repro.verify``: run the verification suite, emit the report.

``--quick`` runs the CI-sized suite (a couple of minutes on one core):
p-convergence of Poisson/Helmholtz on affine and deformed meshes up to
``lx = 8``, h-convergence at ``lx = 4``, BDFk/EXTk temporal order for
``k = 1..3`` on the scalar problem plus the coupled Boussinesq step at
``k = 2``, and the full cross-backend equivalence matrix.  The full suite
extends the sweeps (``lx = 10``, five mesh sizes, coupled ``k = 1..3``).

Exit status 0 iff every study and every equivalence chain passed; the
JSON report always lands at ``--out`` so a red CI run still uploads its
evidence.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.observability.tracer import Tracer
from repro.verify.convergence import ConvergenceStudy
from repro.verify.equivalence import cross_backend_check
from repro.verify.manufactured import trig_mms
from repro.verify.problems import (
    BoussinesqTemporalMMSProblem,
    ScalarTemporalMMSProblem,
    deformed_box_space,
    solve_helmholtz_mms,
    solve_poisson_mms,
    unit_box_space,
)
from repro.verify.report import VerificationReport

__all__ = ["build_report", "main"]

#: Minimum exponential decay rate asserted for p-refinement (calibrated:
#: the implementation observes ~2.8 on both affine and deformed meshes).
MIN_SPECTRAL_RATE = 2.0

#: Temporal-order tolerance: assert ``observed >= k - 0.2``.
TEMPORAL_MARGIN = 0.2


def build_report(quick: bool = True, tracer: Tracer | None = None) -> VerificationReport:
    """Assemble and run the suite; ``quick`` trims the sweeps to CI size."""
    report = VerificationReport()
    mms = trig_mms()

    p_orders = list(range(3, 9)) if quick else list(range(3, 11))
    h_elems = (1, 2, 3, 4) if quick else (1, 2, 3, 4, 5)

    def poisson_affine(lx: float) -> float:
        return solve_poisson_mms(unit_box_space(2, int(lx)), mms).error

    def poisson_deformed(lx: float) -> float:
        return solve_poisson_mms(deformed_box_space(2, int(lx)), mms).error

    def helmholtz_affine(lx: float) -> float:
        return solve_helmholtz_mms(unit_box_space(2, int(lx)), mms).error

    def helmholtz_deformed(lx: float) -> float:
        return solve_helmholtz_mms(deformed_box_space(2, int(lx)), mms).error

    p_cases: list[tuple[str, Callable[[float], float]]] = [
        ("poisson-p-affine", poisson_affine),
        ("poisson-p-deformed", poisson_deformed),
        ("helmholtz-p-affine", helmholtz_affine),
        ("helmholtz-p-deformed", helmholtz_deformed),
    ]
    for name, case in p_cases:
        study = ConvergenceStudy(name, case, kind="p", tracer=tracer)
        report.studies.append(study.run(p_orders, MIN_SPECTRAL_RATE))

    h_lx = 4

    def poisson_h(h: float) -> float:
        return solve_poisson_mms(unit_box_space(round(1.0 / h), h_lx), mms).error

    study = ConvergenceStudy("poisson-h-lx4", poisson_h, kind="h", tracer=tracer)
    report.studies.append(study.run([1.0 / n for n in h_elems], h_lx - 0.5))

    # Temporal order: scalar advection--diffusion at every supported order.
    dts = [0.01, 0.005, 0.0025]
    scalar_problem = ScalarTemporalMMSProblem()
    for order in (1, 2, 3):
        def scalar_case(dt: float, _order: int = order) -> float:
            return scalar_problem.run(_order, dt)

        study = ConvergenceStudy(
            f"scalar-dt-bdf{order}", scalar_case, kind="dt", tracer=tracer
        )
        report.studies.append(study.run(dts, order - TEMPORAL_MARGIN))

    # Coupled Boussinesq step.  The velocity order is capped at 2 by the
    # incremental pressure-correction splitting (see EXPERIMENTS.md), so
    # the velocity expectation is min(k, 2) with a wider margin that also
    # absorbs coupling-error pollution near the spatial floor.
    coupled_orders = (2,) if quick else (1, 2, 3)
    coupled_dts = dts[:2] if quick else dts
    coupled = BoussinesqTemporalMMSProblem()
    for order in coupled_orders:
        errs = [coupled.run(order, dt) for dt in coupled_dts]

        def vel_case(dt: float, _errs: list[tuple[float, float]] = errs) -> float:
            return _errs[coupled_dts.index(dt)][0]

        def temp_case(dt: float, _errs: list[tuple[float, float]] = errs) -> float:
            return _errs[coupled_dts.index(dt)][1]

        vel_expected = min(order, 2) - 0.5
        study = ConvergenceStudy(
            f"boussinesq-dt-bdf{order}-velocity", vel_case, kind="dt", tracer=tracer
        )
        report.studies.append(study.run(coupled_dts, vel_expected))
        study = ConvergenceStudy(
            f"boussinesq-dt-bdf{order}-temperature", temp_case, kind="dt", tracer=tracer
        )
        report.studies.append(study.run(coupled_dts, min(order, 2) - 0.5))

    # Cross-backend equivalence over the full operator/solver chain.
    report.equivalence = cross_backend_check(tracer=tracer)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Run the verification suite (manufactured solutions, "
        "convergence orders, cross-backend equivalence).",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized sweeps (default: full)"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report to this path"
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
    sys.stdout.write(report.text_table() + "\n")
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
