"""Entry point: ``python -m repro.verify``."""

from repro.verify.cli import main

raise SystemExit(main())
