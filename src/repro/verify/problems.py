"""Discrete verification problems: domains, elliptic solves, temporal MMS.

This module turns the closed-form fields of
:mod:`repro.verify.manufactured` into concrete discrete problems:

* domain builders (affine unit box, seeded randomly-deformed box, periodic
  box) shared by the convergence studies and the regression tests;
* elliptic MMS solves with inhomogeneous Dirichlet data handled by lifting
  (solve the homogeneous correction, add the boundary interpolant back);
* a preconditioner factory pairing each preconditioner with the Krylov
  method it is valid for -- the Schwarz-based preconditioners are not
  symmetric with respect to the gather--scatter inner product, so they pair
  with GMRES exactly as the production pressure solver does, while Jacobi
  keeps CG;
* temporal MMS problems for the scalar advection--diffusion equation and
  the coupled Boussinesq step, with the multistep history primed from the
  exact solution so the BDFk/EXTk design order is observable from the very
  first step (the default order ramp would otherwise contaminate the fit).

The temporal error metric is the *maximum over the trajectory* of the
relative L^2 error, not the final-time error: a single-time measurement can
accidentally cancel (the error is oscillatory in t) and report a spurious
order, which cost a calibration round to diagnose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.case import CaseConfig
from repro.core.fluid import FluidScheme
from repro.core.scalar import ScalarScheme
from repro.precond.fdm import FastDiagonalization
from repro.precond.hsmg import HybridSchwarzMultigrid
from repro.precond.jacobi import JacobiPrecond
from repro.precond.schwarz import SchwarzSmoother
from repro.sem.bc import DirichletBC
from repro.sem.mesh import HexMesh, box_mesh
from repro.sem.operators import ax_helmholtz, ax_poisson, convective_term_collocated
from repro.sem.space import FunctionSpace
from repro.solvers.cg import ConjugateGradient
from repro.solvers.gmres import Gmres
from repro.solvers.monitor import SolverMonitor
from repro.verify.manufactured import (
    BoussinesqMMS,
    ScalarAdvectionDiffusionMMS,
    SteadyMMS,
)

__all__ = [
    "unit_box_space",
    "deformed_box_space",
    "periodic_box_space",
    "EllipticSolveResult",
    "solve_poisson_mms",
    "solve_helmholtz_mms",
    "make_preconditioner",
    "solve_poisson_mms_preconditioned",
    "PRECONDITIONERS",
    "ScalarTemporalMMSProblem",
    "BoussinesqTemporalMMSProblem",
]

Array = np.ndarray


# -- domains -----------------------------------------------------------------


def unit_box_space(n: int, lx: int) -> FunctionSpace:
    """Affine ``n x n x n`` unit box."""
    return FunctionSpace(box_mesh((n, n, n)), lx)


def deformed_box_space(
    n: int, lx: int, amplitude: float = 0.05, seed: int = 3
) -> FunctionSpace:
    """Unit box with seeded random trigonometric corner perturbation.

    Every corner moves by ``amplitude * sin(pi x + phi) * sin(pi y + phi)
    * sin(pi z + phi)`` per direction with seeded random phases, producing
    genuinely non-affine (trilinear) elements with full cross-metric terms.
    The Jacobian is asserted positive so the deformation never folds.
    """
    mesh = box_mesh((n, n, n))
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2 * np.pi, size=(3, 3))
    cc = mesh.corner_coords
    x, y, z = cc[..., 0].copy(), cc[..., 1].copy(), cc[..., 2].copy()
    for d in range(3):
        cc[..., d] += (
            amplitude
            * np.sin(np.pi * x + phases[d, 0])
            * np.sin(np.pi * y + phases[d, 1])
            * np.sin(np.pi * z + phases[d, 2])
        )
    space = FunctionSpace(mesh, lx)
    if not np.all(space.coef.jac > 0):
        raise ValueError(
            f"deformation amplitude {amplitude} folds the mesh (negative Jacobian)"
        )
    return space


def periodic_box_space(
    n: int, lx: int, length: float = 2.0
) -> FunctionSpace:
    """Fully periodic cube of side ``length`` (for the Taylor--Green MMS)."""
    mesh = box_mesh(
        (n, n, n), lengths=(length, length, length), periodic=(True, True, True)
    )
    return FunctionSpace(mesh, lx)


# -- elliptic MMS solves -----------------------------------------------------


@dataclass(frozen=True)
class EllipticSolveResult:
    """Outcome of one MMS elliptic solve."""

    error: float  #: relative L^2 error against the manufactured solution
    iterations: int
    converged: bool
    monitor: SolverMonitor


def _lifted_elliptic_solve(
    space: FunctionSpace,
    mms: SteadyMMS,
    apply_op: Callable[[Array], Array],
    forcing: Array,
    tol: float,
    maxiter: int,
) -> EllipticSolveResult:
    """Shared Dirichlet-lifting solve for both elliptic operators.

    ``apply_op`` is the unassembled elementwise operator; assembly
    (gather--scatter) and masking happen here so every caller treats the
    boundary identically:  ``A (u0 + lift) = B f`` becomes
    ``A u0 = B f - A lift`` restricted to the interior.
    """
    bc = DirichletBC(space, space.mesh.boundary_labels(), mms.solution)
    mask, lift = bc.mask, bc.values
    rhs = space.gs.add(space.coef.mass * forcing - apply_op(lift)) * mask

    def amul(u: Array) -> Array:
        return space.gs.add(apply_op(u)) * mask

    pre = JacobiPrecond(space, 1.0, 0.0, mask=mask)
    cg = ConjugateGradient(amul, space.gs.dot, precond=pre, tol=tol, maxiter=maxiter)
    u0, mon = cg.solve(rhs)
    u = u0 + lift
    exact = space.interpolate(mms.solution)
    err = space.relative_l2_error(u, exact)
    return EllipticSolveResult(
        error=err, iterations=mon.iterations, converged=mon.converged, monitor=mon
    )


def solve_poisson_mms(
    space: FunctionSpace,
    mms: SteadyMMS,
    tol: float = 1e-12,
    maxiter: int = 2000,
) -> EllipticSolveResult:
    """Solve ``-lap u = f`` with manufactured Dirichlet data and forcing."""
    forcing = np.asarray(mms.poisson_forcing(space.x, space.y, space.z))

    def op(u: Array) -> Array:
        return ax_poisson(u, space.coef, space.dx)

    return _lifted_elliptic_solve(space, mms, op, forcing, tol, maxiter)


def solve_helmholtz_mms(
    space: FunctionSpace,
    mms: SteadyMMS,
    h1: float = 1.0,
    h2: float = 10.0,
    tol: float = 1e-12,
    maxiter: int = 2000,
) -> EllipticSolveResult:
    """Solve ``-h1 lap u + h2 u = f`` with manufactured data and forcing."""
    forcing = np.asarray(mms.helmholtz_forcing(space.x, space.y, space.z, h1, h2))

    def op(u: Array) -> Array:
        return ax_helmholtz(u, space.coef, space.dx, h1, h2)

    return _lifted_elliptic_solve(space, mms, op, forcing, tol, maxiter)


# -- preconditioner factory --------------------------------------------------

#: Preconditioner names accepted by :func:`make_preconditioner`, each paired
#: with the Krylov method it is symmetric/valid for.
PRECONDITIONERS: tuple[str, ...] = ("none", "jacobi", "fdm", "schwarz", "hsmg")


def make_preconditioner(
    name: str, space: FunctionSpace, mask: Array
) -> tuple[Callable[[Array], Array] | None, str]:
    """Build preconditioner ``name``; returns ``(apply, recommended_solver)``.

    ``recommended_solver`` is ``"cg"`` for preconditioners symmetric with
    respect to the gather--scatter inner product (identity, Jacobi) and
    ``"gmres"`` for the Schwarz family -- the overlap/ghost exchange makes
    those non-symmetric, and CG silently diverges with them (observed:
    2000 iterations without convergence), exactly why the production
    pressure solve uses GMRES + HSMG.
    """

    def masked(apply: Callable[[Array], Array]) -> Callable[[Array], Array]:
        def wrapped(r: Array) -> Array:
            return apply(r) * mask

        return wrapped

    if name == "none":
        return None, "cg"
    if name == "jacobi":
        return JacobiPrecond(space, 1.0, 0.0, mask=mask), "cg"
    if name == "fdm":
        return masked(FastDiagonalization(space)), "gmres"
    if name == "schwarz":
        return masked(SchwarzSmoother(space, mask=mask)), "gmres"
    if name == "hsmg":
        # Pin the paper's configuration (10-iteration CG coarse solve):
        # the iteration-count regression bands reference this variant, not
        # the production direct-coarse fast path.
        return (
            masked(
                HybridSchwarzMultigrid(
                    space, mask=mask, coarse_iterations=10, coarse_method="cg"
                )
            ),
            "gmres",
        )
    raise ValueError(f"unknown preconditioner {name!r}; options: {PRECONDITIONERS}")


def solve_poisson_mms_preconditioned(
    space: FunctionSpace,
    mms: SteadyMMS,
    precond: str,
    tol: float = 1e-10,
    maxiter: int = 2000,
) -> EllipticSolveResult:
    """Poisson MMS solve through :func:`make_preconditioner`.

    Used by the iteration-count regression tests and the CLI: the error
    assertion proves the preconditioned solve converges to the *right*
    answer, the iteration count pins the preconditioner's strength.
    """
    bc = DirichletBC(space, space.mesh.boundary_labels(), mms.solution)
    mask, lift = bc.mask, bc.values
    forcing = np.asarray(mms.poisson_forcing(space.x, space.y, space.z))
    rhs = space.gs.add(
        space.coef.mass * forcing - ax_poisson(lift, space.coef, space.dx)
    ) * mask

    def amul(u: Array) -> Array:
        return space.gs.add(ax_poisson(u, space.coef, space.dx)) * mask

    pre, method = make_preconditioner(precond, space, mask)
    if method == "cg":
        solver: ConjugateGradient | Gmres = ConjugateGradient(
            amul, space.gs.dot, precond=pre, tol=tol, maxiter=maxiter
        )
    else:
        solver = Gmres(amul, space.gs.dot, precond=pre, tol=tol, maxiter=maxiter)
    u0, mon = solver.solve(rhs)
    u = u0 + lift
    exact = space.interpolate(mms.solution)
    err = space.relative_l2_error(u, exact)
    return EllipticSolveResult(
        error=err, iterations=mon.iterations, converged=mon.converged, monitor=mon
    )


# -- temporal MMS problems ---------------------------------------------------


@dataclass
class ScalarTemporalMMSProblem:
    """Advection--diffusion temporal-order study problem.

    Integrates the manufactured temperature on a periodic box with a
    prescribed (exact) advecting velocity; the spatial resolution
    (``lx = 10`` on ``2^3`` elements of the length-2 box) puts the spatial
    error floor near 4e-8, far below the temporal errors measured at the
    study's step sizes, so the fitted slope is purely temporal.
    """

    kappa: float = 0.05
    lx: int = 10
    nelem: int = 2
    t_final: float = 0.1

    mms: ScalarAdvectionDiffusionMMS = field(init=False)

    def __post_init__(self) -> None:
        self.mms = ScalarAdvectionDiffusionMMS(kappa=self.kappa)

    def run(self, order: int, dt: float) -> float:
        """Max-over-trajectory relative L^2 temperature error."""
        from repro.timeint.bdf_ext import TimeScheme

        space = periodic_box_space(self.nelem, self.lx)
        # kappa = 1/sqrt(Ra Pr) with Pr = 1  =>  Ra = 1/kappa^2.
        cfg = CaseConfig(
            space.mesh,
            lx=self.lx,
            rayleigh=1.0 / self.kappa**2,
            prandtl=1.0,
            dt=dt,
            time_order=order,
            temperature_tol=1e-13,
            dealias=False,
        )
        scheme = TimeScheme(order)
        scalar = ScalarScheme(space, cfg, scheme)
        b = space.coef.mass
        x, y, z = space.x, space.y, space.z
        mms = self.mms
        t0 = 0.0

        def weak_forcing(t: float) -> Array:
            uj = mms.velocity(x, y, z, t)
            Tj = mms.temperature(x, y, z, t)
            conv = convective_term_collocated(uj[0], uj[1], uj[2], Tj, space.coef, space.dx)
            return -b * conv + b * mms.source(x, y, z, t)

        scalar.prime_history(
            lambda t: mms.temperature(x, y, z, t), weak_forcing, t0=t0, dt=dt
        )

        t = t0
        nsteps = round(self.t_final / dt)
        err = 0.0
        for _ in range(nsteps):
            vel = mms.velocity(x, y, z, t)
            scalar.step(vel, source_weak=b * mms.source(x, y, z, t))
            scheme.advance()
            t += dt
            exact = mms.temperature(x, y, z, t)
            err = max(err, space.relative_l2_error(scalar.temperature, exact))
        return err


@dataclass
class BoussinesqTemporalMMSProblem:
    """Coupled Boussinesq temporal-order study problem.

    Runs the production :class:`~repro.core.fluid.FluidScheme` +
    :class:`~repro.core.scalar.ScalarScheme` pair exactly as
    :class:`~repro.core.simulation.Simulation` does (buoyancy from the
    *computed* temperature, scalar stepped before the fluid), against the
    Taylor--Green manufactured solution.

    The temperature observes the full design order ``k``.  The velocity is
    limited to second order by the incremental pressure-correction
    splitting, so callers should assert ``min(k, 2)`` for it -- that limit
    is a property of the scheme, not a bug, and is documented in
    EXPERIMENTS.md.
    """

    rayleigh: float = 4.0e2
    prandtl: float = 1.0
    lx: int = 10
    nelem: int = 2
    t_final: float = 0.1

    def run(self, order: int, dt: float) -> tuple[float, float]:
        """Max-over-trajectory relative L^2 errors ``(velocity, temperature)``."""
        from repro.timeint.bdf_ext import TimeScheme

        space = periodic_box_space(self.nelem, self.lx)
        cfg = CaseConfig(
            space.mesh,
            lx=self.lx,
            rayleigh=self.rayleigh,
            prandtl=self.prandtl,
            dt=dt,
            time_order=order,
            pressure_tol=1e-11,
            velocity_tol=1e-13,
            temperature_tol=1e-13,
            dealias=False,
            pressure_projection_dim=0,
        )
        mms = BoussinesqMMS(
            viscosity=cfg.viscosity, conductivity=cfg.conductivity
        )
        scheme = TimeScheme(order)
        fluid = FluidScheme(space, cfg, scheme)
        scalar = ScalarScheme(space, cfg, scheme)
        b = space.coef.mass
        x, y, z = space.x, space.y, space.z
        t0 = 0.0

        def fluid_weak_forcing(t: float) -> tuple[Array, Array, Array]:
            # Explicit forcing incl. buoyancy from the *exact* temperature
            # (history priming only; the loop below uses the computed one).
            fx, fy, fz = mms.momentum_forcing(x, y, z, t)
            tj = mms.temperature(x, y, z, t)
            return (b * fx, b * fy, b * (fz + tj))

        def fluid_history_forcing(t: float) -> tuple[Array, Array, Array]:
            uj = mms.velocity(x, y, z, t)
            fw = fluid_weak_forcing(t)
            out = []
            for comp, f in zip(uj, fw):
                conv = convective_term_collocated(
                    uj[0], uj[1], uj[2], comp, space.coef, space.dx
                )
                out.append(-b * conv + f)
            return (out[0], out[1], out[2])

        def scalar_history_forcing(t: float) -> Array:
            uj = mms.velocity(x, y, z, t)
            tj = mms.temperature(x, y, z, t)
            conv = convective_term_collocated(uj[0], uj[1], uj[2], tj, space.coef, space.dx)
            return -b * conv + b * mms.temperature_source(x, y, z, t)

        fluid.prime_history(
            lambda t: mms.velocity(x, y, z, t),
            fluid_history_forcing,
            t0=t0,
            dt=dt,
            pressure=mms.pressure(x, y, z, t0),
        )
        scalar.prime_history(
            lambda t: mms.temperature(x, y, z, t),
            scalar_history_forcing,
            t0=t0,
            dt=dt,
        )

        t = t0
        nsteps = round(self.t_final / dt)
        err_u = err_t = 0.0
        for _ in range(nsteps):
            fx, fy, fz = mms.momentum_forcing(x, y, z, t)
            # Buoyancy from the computed temperature, as Simulation.step does.
            forcing = (b * fx, b * fy, b * (fz + scalar.temperature))
            vel_now = (fluid.u[0], fluid.v[0], fluid.w[0])
            scalar.step(vel_now, source_weak=b * mms.temperature_source(x, y, z, t))
            fluid.step(forcing)
            scheme.advance()
            t += dt

            ue = mms.velocity(x, y, z, t)
            num = np.sqrt(
                sum(
                    space.norm_l2(a - e) ** 2
                    for a, e in zip((fluid.u[0], fluid.v[0], fluid.w[0]), ue)
                )
            )
            den = np.sqrt(sum(space.norm_l2(e) ** 2 for e in ue))
            err_u = max(err_u, float(num / den))
            exact_t = mms.temperature(x, y, z, t)
            err_t = max(err_t, space.relative_l2_error(scalar.temperature, exact_t))
        return err_u, err_t
