"""Cross-backend equivalence: identical numerics on every device backend.

The backend abstraction promises that moving a kernel from the CPU to a
(simulated) GPU changes *performance*, never *results*.  This module makes
the promise checkable: it routes the same operator/solver chains through
each registered backend's ``launch`` path -- elliptic operator applies,
gather--scatter assembly, every preconditioner, and complete Krylov solves
-- and bounds the maximum pointwise divergence between backends.

The simulated-GPU backends execute kernels on host buffers, so the
expected divergence is exactly zero; the default tolerance of ``1e-12``
leaves headroom for a future backend with genuinely reordered reductions
while still catching any algorithmic drift (a wrong kernel launched, stale
buffers, missing synchronization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.backend.device import Device
from repro.backend.registry import get_backend
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.sem.operators import ax_helmholtz, ax_poisson
from repro.sem.space import FunctionSpace
from repro.solvers.cg import ConjugateGradient
from repro.solvers.gmres import Gmres
from repro.verify.manufactured import trig_mms
from repro.verify.problems import deformed_box_space, make_preconditioner

__all__ = ["EquivalenceResult", "cross_backend_check", "DEFAULT_CHAINS"]

Array = np.ndarray

#: Chain names run by default: elementwise operators, assembly, each
#: preconditioner apply, and the two production solver pairings.
DEFAULT_CHAINS: tuple[str, ...] = (
    "ax_poisson",
    "ax_helmholtz",
    "gs_add",
    "precond:jacobi",
    "precond:fdm",
    "precond:schwarz",
    "precond:hsmg",
    "solve:cg+jacobi",
    "solve:gmres+hsmg",
)


@dataclass
class EquivalenceResult:
    """Divergence of one chain across backends."""

    chain: str
    backends: tuple[str, ...]
    max_divergence: float
    tolerance: float
    passed: bool
    detail: dict[str, Any] = field(default_factory=dict)

    def as_record(self) -> dict[str, Any]:
        return {
            "chain": self.chain,
            "backends": list(self.backends),
            "max_divergence": self.max_divergence,
            "tolerance": self.tolerance,
            "passed": self.passed,
            **({"detail": self.detail} if self.detail else {}),
        }


def _device_apply(
    dev: Device, name: str, fn: Callable[[Array, Array], None], u: Array, shape: tuple
) -> Array:
    """Launch a two-buffer kernel ``fn(in, out)`` through the backend."""
    u_d = dev.to_device(u)
    out_d = dev.allocate(shape)

    def kernel(u_buf: Array, out_buf: Array) -> None:
        fn(u_buf, out_buf)

    dev.launch(name, kernel, u_d, out_d)
    dev.synchronize()
    return dev.to_host(out_d)


def _chain_output(
    chain: str,
    dev: Device,
    space: FunctionSpace,
    mask: Array,
    u: Array,
    rhs: Array,
) -> Array:
    """Run one named chain on one backend and return its host-side result."""
    shape = space.shape
    if chain == "ax_poisson":
        def k_pois(u_buf: Array, out_buf: Array) -> None:
            out_buf[:] = ax_poisson(u_buf, space.coef, space.dx)

        return _device_apply(dev, "ax_poisson", k_pois, u, shape)

    if chain == "ax_helmholtz":
        def k_helm(u_buf: Array, out_buf: Array) -> None:
            out_buf[:] = ax_helmholtz(u_buf, space.coef, space.dx, 1.0, 2.5)

        return _device_apply(dev, "ax_helmholtz", k_helm, u, shape)

    if chain == "gs_add":
        def k_gs(u_buf: Array, out_buf: Array) -> None:
            out_buf[:] = space.gs.add(u_buf)

        return _device_apply(dev, "gs_add", k_gs, u, shape)

    if chain.startswith("precond:"):
        pname = chain.split(":", 1)[1]
        pre, _ = make_preconditioner(pname, space, mask)
        assert pre is not None

        def k_pre(r_buf: Array, out_buf: Array) -> None:
            out_buf[:] = pre(r_buf)

        return _device_apply(dev, f"precond_{pname}", k_pre, rhs, shape)

    if chain.startswith("solve:"):
        method, pname = chain.split(":", 1)[1].split("+")
        pre, _ = make_preconditioner(pname, space, mask)

        def amul(v: Array) -> Array:
            def k_amul(v_buf: Array, out_buf: Array) -> None:
                out_buf[:] = space.gs.add(ax_poisson(v_buf, space.coef, space.dx)) * mask

            return _device_apply(dev, "ax_poisson_assembled", k_amul, v, shape)

        if method == "cg":
            solver: ConjugateGradient | Gmres = ConjugateGradient(
                amul, space.gs.dot, precond=pre, tol=1e-10, maxiter=400
            )
        else:
            solver = Gmres(amul, space.gs.dot, precond=pre, tol=1e-10, maxiter=400)
        sol, _mon = solver.solve(rhs)
        return np.asarray(sol)

    raise ValueError(f"unknown chain {chain!r}; options: {DEFAULT_CHAINS}")


def cross_backend_check(
    backends: tuple[str, ...] = ("cpu", "simgpu"),
    chains: tuple[str, ...] = DEFAULT_CHAINS,
    tolerance: float = 1e-12,
    lx: int = 6,
    n: int = 2,
    tracer: Tracer | None = None,
) -> list[EquivalenceResult]:
    """Run every chain on every backend; bound pairwise divergence.

    The reference is the first backend; each other backend's output is
    compared to it in the max-abs norm.  The problem is a seeded deformed
    box (non-affine metrics) with the trigonometric MMS right-hand side,
    so every code path the production solvers take is covered.
    """
    if len(backends) < 2:
        raise ValueError("need at least two backends to compare")
    tracer = tracer if tracer is not None else NULL_TRACER

    space = deformed_box_space(n, lx, amplitude=0.05, seed=7)
    from repro.sem.bc import DirichletBC

    mms = trig_mms()
    bc = DirichletBC(space, space.mesh.boundary_labels(), mms.solution)
    mask = bc.mask
    u = space.interpolate(mms.solution)
    forcing = np.asarray(mms.poisson_forcing(space.x, space.y, space.z))
    rhs = space.gs.add(
        space.coef.mass * forcing - ax_poisson(bc.values, space.coef, space.dx)
    ) * mask

    results: list[EquivalenceResult] = []
    for chain in chains:
        with tracer.span("verify.equivalence", chain=chain):
            outputs: dict[str, Array] = {}
            for bname in backends:
                dev = get_backend(bname)
                outputs[bname] = _chain_output(chain, dev, space, mask, u, rhs)
            ref = outputs[backends[0]]
            worst = 0.0
            per_backend: dict[str, float] = {}
            for bname in backends[1:]:
                d = float(np.max(np.abs(outputs[bname] - ref)))
                per_backend[bname] = d
                worst = max(worst, d)
        results.append(
            EquivalenceResult(
                chain=chain,
                backends=backends,
                max_divergence=worst,
                tolerance=tolerance,
                passed=worst < tolerance,
                detail={"vs_" + b: d for b, d in per_backend.items()},
            )
        )
    return results
