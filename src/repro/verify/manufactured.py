"""Symbolic-free manufactured solutions: closed-form fields and forcings.

The method of manufactured solutions (MMS) inverts the usual workflow:
*choose* a smooth exact solution, push it through the continuous PDE to
obtain the forcing that makes it exact, then check that the discrete
solver reproduces the chosen field at the design convergence rate.  No
computer algebra is involved -- every derivative below was taken by hand
and is exercised against finite differences in the test suite, so the
forcing formulas themselves are verified before they verify anything else.

Two families live here:

* **steady** (:class:`SteadyMMS`): a scalar field with its gradient and
  Laplacian, turned into Poisson (``-lap u = f``) or Helmholtz
  (``h1 * -lap u + h2 * u = f``) forcings.  The trigonometric instance uses
  deliberately *non-integer* wavenumbers so the Dirichlet boundary data is
  nonzero -- a solve that forgets the inhomogeneous lifting cannot pass.

* **unsteady** (:class:`ScalarAdvectionDiffusionMMS`,
  :class:`BoussinesqMMS`): time-modulated Taylor--Green fields on a
  periodic box.  The Taylor--Green velocity has the special property that
  ``(u . grad) u`` is a pure gradient, cancelled exactly by the closed-form
  pressure, which keeps the momentum forcing short enough to audit by eye.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "SteadyMMS",
    "trig_mms",
    "polynomial_mms",
    "ScalarAdvectionDiffusionMMS",
    "BoussinesqMMS",
]

Array = np.ndarray
ScalarField = Callable[[Array, Array, Array], Array]


@dataclass(frozen=True)
class SteadyMMS:
    """A manufactured steady scalar: solution, gradient and Laplacian.

    ``gradient`` returns the three components ``(u_x, u_y, u_z)``;
    ``laplacian`` returns ``lap u``.  The forcing builders below derive the
    right-hand sides for the elliptic operators of :mod:`repro.sem.operators`.
    """

    name: str
    solution: ScalarField
    gradient: Callable[[Array, Array, Array], tuple[Array, Array, Array]]
    laplacian: ScalarField

    def poisson_forcing(self, x: Array, y: Array, z: Array) -> Array:
        """Forcing ``f`` of ``-lap u = f``."""
        return -self.laplacian(x, y, z)

    def helmholtz_forcing(
        self, x: Array, y: Array, z: Array, h1: float, h2: float
    ) -> Array:
        """Forcing ``f`` of ``-h1 lap u + h2 u = f`` (the code's ax_helmholtz)."""
        return -h1 * self.laplacian(x, y, z) + h2 * self.solution(x, y, z)


def trig_mms(kx: float = 1.5, ky: float = 1.0, kz: float = 0.5) -> SteadyMMS:
    """Product-of-sines exact solution with non-integer wavenumbers.

    ``u = sin(pi kx x) sin(pi ky y) sin(pi kz z)``.  On the unit box the
    defaults give nonzero Dirichlet traces on four of the six faces, so the
    inhomogeneous-lifting path of the solvers is always exercised.
    """

    def u(x: Array, y: Array, z: Array) -> Array:
        return np.sin(np.pi * kx * x) * np.sin(np.pi * ky * y) * np.sin(np.pi * kz * z)

    def grad(x: Array, y: Array, z: Array) -> tuple[Array, Array, Array]:
        sx, cx = np.sin(np.pi * kx * x), np.cos(np.pi * kx * x)
        sy, cy = np.sin(np.pi * ky * y), np.cos(np.pi * ky * y)
        sz, cz = np.sin(np.pi * kz * z), np.cos(np.pi * kz * z)
        return (
            np.pi * kx * cx * sy * sz,
            np.pi * ky * sx * cy * sz,
            np.pi * kz * sx * sy * cz,
        )

    def lap(x: Array, y: Array, z: Array) -> Array:
        return -(np.pi**2) * (kx**2 + ky**2 + kz**2) * u(x, y, z)

    return SteadyMMS(f"trig(kx={kx},ky={ky},kz={kz})", u, grad, lap)


def polynomial_mms() -> SteadyMMS:
    """Quadratic exact solution: a patch test, exact for every ``lx >= 3``.

    ``u = x^2 + 2 y^2 + 3 z^2 + x y + y z - x z + x + 2``, so
    ``lap u = 12`` exactly.  Any ``lx >= 3`` space must reproduce it to
    round-off independent of mesh deformation -- a failure localizes the
    bug to the geometric factors rather than to resolution.
    """

    def u(x: Array, y: Array, z: Array) -> Array:
        return x**2 + 2.0 * y**2 + 3.0 * z**2 + x * y + y * z - x * z + x + 2.0

    def grad(x: Array, y: Array, z: Array) -> tuple[Array, Array, Array]:
        return (
            2.0 * x + y - z + 1.0,
            4.0 * y + x + z,
            6.0 * z + y - x,
        )

    def lap(x: Array, y: Array, z: Array) -> Array:
        return np.full_like(x, 12.0)

    return SteadyMMS("quadratic-patch", u, grad, lap)


@dataclass(frozen=True)
class ScalarAdvectionDiffusionMMS:
    """Manufactured unsteady advection--diffusion on the periodic (0,2)^3 box.

    Exact temperature ``T = cos(omega t) sin(K x) cos(K y)`` advected by the
    time-modulated Taylor--Green velocity

        u = g(t) ( sin(Kx) cos(Ky), -cos(Kx) sin(Ky), 0 ),
        g(t) = 1 + 0.5 sin(omega t).

    The advection term collapses to ``u . grad T = g th K sin(Kx) cos(Kx)``
    (the y-parts combine via ``cos^2 + sin^2``), giving a compact source for

        T_t + u . grad T - kappa lap T = s.

    With ``K = pi`` the fields are periodic over a length-2 box.
    """

    kappa: float
    k: float = np.pi
    omega: float = 6.0

    def _g(self, t: float) -> float:
        return 1.0 + 0.5 * np.sin(self.omega * t)

    def _theta(self, t: float) -> float:
        return float(np.cos(self.omega * t))

    def temperature(self, x: Array, y: Array, z: Array, t: float) -> Array:
        return self._theta(t) * np.sin(self.k * x) * np.cos(self.k * y)

    def velocity(
        self, x: Array, y: Array, z: Array, t: float
    ) -> tuple[Array, Array, Array]:
        g = self._g(t)
        return (
            g * np.sin(self.k * x) * np.cos(self.k * y),
            -g * np.cos(self.k * x) * np.sin(self.k * y),
            np.zeros_like(x),
        )

    def source(self, x: Array, y: Array, z: Array, t: float) -> Array:
        k, om = self.k, self.omega
        th = self._theta(t)
        dth = -om * np.sin(om * t)
        sx, cx, cy = np.sin(k * x), np.cos(k * x), np.cos(k * y)
        return (
            dth * sx * cy
            + self._g(t) * th * k * sx * cx
            + 2.0 * self.kappa * k * k * th * sx * cy
        )


@dataclass(frozen=True)
class BoussinesqMMS:
    """Manufactured coupled Boussinesq step on the periodic (0,2)^3 box.

    The velocity is the modulated Taylor--Green field of
    :class:`ScalarAdvectionDiffusionMMS`; because ``(u . grad) u`` is the
    gradient of ``-(g^2/4)(cos 2Kx + cos 2Ky)``, choosing the *negative* of
    that as the pressure cancels it from the momentum forcing, which
    reduces to

        F = (g' + 2 nu K^2 g) (sin Kx cos Ky, -cos Kx sin Ky, 0) - T e_z,

    where the last term compensates the buoyancy the scheme adds from the
    evolving temperature.  The temperature satisfies the same
    advection--diffusion MMS with diffusivity ``conductivity``.
    """

    viscosity: float
    conductivity: float
    k: float = np.pi
    omega: float = 6.0

    @property
    def scalar(self) -> ScalarAdvectionDiffusionMMS:
        return ScalarAdvectionDiffusionMMS(
            kappa=self.conductivity, k=self.k, omega=self.omega
        )

    def _g(self, t: float) -> float:
        return 1.0 + 0.5 * np.sin(self.omega * t)

    def _dg(self, t: float) -> float:
        return 0.5 * self.omega * float(np.cos(self.omega * t))

    def velocity(
        self, x: Array, y: Array, z: Array, t: float
    ) -> tuple[Array, Array, Array]:
        return self.scalar.velocity(x, y, z, t)

    def pressure(self, x: Array, y: Array, z: Array, t: float) -> Array:
        g = self._g(t)
        return (g * g / 4.0) * (np.cos(2 * self.k * x) + np.cos(2 * self.k * y))

    def temperature(self, x: Array, y: Array, z: Array, t: float) -> Array:
        return self.scalar.temperature(x, y, z, t)

    def momentum_forcing(
        self, x: Array, y: Array, z: Array, t: float
    ) -> tuple[Array, Array, Array]:
        k = self.k
        amp = self._dg(t) + 2.0 * self.viscosity * k * k * self._g(t)
        return (
            amp * np.sin(k * x) * np.cos(k * y),
            -amp * np.cos(k * x) * np.sin(k * y),
            -self.temperature(x, y, z, t),
        )

    def temperature_source(self, x: Array, y: Array, z: Array, t: float) -> Array:
        return self.scalar.source(x, y, z, t)
