"""Verification subsystem: manufactured solutions and order checks.

Code verification in the sense of Roache: before any physics claim (Nusselt
numbers, boundary-layer statistics) can be trusted, the discrete operators,
solvers and time integrators must demonstrably converge at their *design*
rates on problems with known closed-form solutions.  This package provides

* :mod:`repro.verify.manufactured` -- symbolic-free manufactured solutions
  (closed-form field + forcing callables) for the Poisson and Helmholtz
  operators, the advection--diffusion scalar and the coupled Boussinesq
  step;
* :mod:`repro.verify.convergence` -- a study runner that sweeps polynomial
  order (p-refinement), element count (h-refinement) or time step and fits
  the observed convergence rate against the theoretical one;
* :mod:`repro.verify.equivalence` -- a cross-backend checker that runs the
  same operator/solver chain on every registered backend and bounds the
  maximum pointwise divergence;
* ``python -m repro.verify`` -- a CLI emitting a JSON + text-table report,
  consumed by the CI ``verify`` job.

The thresholds asserted here were calibrated against the implementation
(see EXPERIMENTS.md): spectral p-convergence reaches machine precision by
``lx = 10`` on both affine and randomly deformed meshes, h-convergence
observes ~``lx + 0.8``, and BDFk/EXTk time integration observes its design
order ``k`` once the multistep history is primed with exact data.
"""

from repro.verify.convergence import (
    ConvergenceStudy,
    StudyResult,
    fit_algebraic_order,
    fit_exponential_rate,
)
from repro.verify.equivalence import EquivalenceResult, cross_backend_check
from repro.verify.manufactured import (
    BoussinesqMMS,
    ScalarAdvectionDiffusionMMS,
    SteadyMMS,
    polynomial_mms,
    trig_mms,
)
from repro.verify.report import VerificationReport

__all__ = [
    "ConvergenceStudy",
    "StudyResult",
    "fit_algebraic_order",
    "fit_exponential_rate",
    "EquivalenceResult",
    "cross_backend_check",
    "SteadyMMS",
    "ScalarAdvectionDiffusionMMS",
    "BoussinesqMMS",
    "polynomial_mms",
    "trig_mms",
    "VerificationReport",
]
