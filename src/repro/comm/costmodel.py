"""DES-style communication cost model over batched exchange rounds.

The batched world (:mod:`repro.comm.batched`) executes collectives and
gather--scatter exchanges as index arithmetic, so "measured" time cannot
come from a wall clock -- at 10^4 simulated ranks the Python process is
three orders of magnitude removed from the machine being simulated.
Instead every exchange round is logged as a :class:`CommRound` (per-edge
``src``/``dst``/``nbytes`` arrays) and this module prices the log with a
discrete-event alpha-beta model parameterized from
:class:`~repro.perfmodel.machine.MachineSpec`:

* **inter-node** hops pay the NIC share: ``alpha = network latency +
  software overhead`` and ``beta = 1 / (node injection BW per GPU)`` --
  the same parameters :class:`~repro.perfmodel.network.NetworkModel`
  uses, so measured and modeled curves share one vocabulary;
* **intra-node** hops ride the Infinity-Fabric/NVLink class links: a
  quarter of the latency and ten times the bandwidth (the established
  ``intra_bw = beta/10`` convention of ``NetworkModel.halo_exchange_us``).

A round is bulk-synchronous: each rank serializes its own sends and
receives on its link shares, and the round costs what the busiest rank
pays.  That is exactly how imbalance eats Fig. 3's parallel efficiency --
every collective waits for the straggler -- and it is fully deterministic,
which is what lets the scaling campaign commit golden efficiency numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.network import NetworkModel

if TYPE_CHECKING:  # pragma: no cover -- topology imports CommRound from here
    from repro.comm.topology import NodeTopology

__all__ = ["CommRound", "CommCostModel"]


@dataclass(frozen=True)
class CommRound:
    """One batched exchange round: parallel per-message edge arrays."""

    phase: str
    src: np.ndarray
    dst: np.ndarray
    nbytes: np.ndarray

    @property
    def n_messages(self) -> int:
        return int(self.src.size)

    @property
    def total_bytes(self) -> int:
        return int(self.nbytes.sum()) if self.nbytes.size else 0

    def split_by_locality(self, topology: "NodeTopology") -> dict[str, tuple[int, int]]:
        """``{"intra"|"inter": (messages, bytes)}`` under a topology."""
        intra = topology.node_of(self.src) == topology.node_of(self.dst)
        return {
            "intra": (int(intra.sum()), int(self.nbytes[intra].sum()) if intra.any() else 0),
            "inter": (
                int((~intra).sum()),
                int(self.nbytes[~intra].sum()) if (~intra).any() else 0,
            ),
        }


class CommCostModel:
    """Alpha-beta pricing of logged rounds on a machine's interconnect.

    Parameters
    ----------
    machine:
        Table 1 platform supplying NIC bandwidth share and latency.
    topology:
        Rank-to-node mapping used to classify each edge as intra- or
        inter-node; defaults to the machine's ``gpus_per_node`` packing.
    software_overhead_us:
        Per-message MPI-stack/staging cost, matching ``NetworkModel``.
    intra_alpha_factor, intra_beta_factor:
        Node-local links relative to the NIC share: a fraction of the
        latency, a multiple of the bandwidth (``beta/10`` by default).
    aggregate_leader_nic:
        When true (default), inter-node messages travelling *between two
        node leaders* are priced at the node's full injection bandwidth
        instead of the per-GPU share: in the staged exchange only the
        leader injects for its whole node, so it owns the NIC rather than
        an ``1/gpus_per_node`` slice of it.
    nic_message_us:
        Per-message processing cost at the node NIC (defaults to the
        software overhead).  Every inter-node message also serializes
        through its source and destination *node* NICs -- ``nic_message_us
        + bytes / node_injection`` each -- and a round cannot finish
        before the busiest NIC drains.  This message-rate limit is why
        the paper aggregates inter-node traffic through node leaders: a
        node sending 40 tiny messages pays 40 NIC slots, its staged
        equivalent pays one slot per destination node.
    """

    def __init__(
        self,
        machine: MachineSpec,
        topology: "NodeTopology | None" = None,
        software_overhead_us: float = 2.0,
        intra_alpha_factor: float = 0.25,
        intra_beta_factor: float = 0.1,
        aggregate_leader_nic: bool = True,
        nic_message_us: float | None = None,
    ) -> None:
        from repro.comm.topology import NodeTopology

        self.machine = machine
        self.topology = (
            topology
            if topology is not None
            else NodeTopology(machine.n_logical_gpus, machine.gpus_per_node)
        )
        self.network = NetworkModel(machine, software_overhead_us=software_overhead_us)
        self.inter_alpha_us = self.network.alpha_us
        self.inter_beta_us = self.network.beta_us_per_byte
        self.intra_alpha_us = self.inter_alpha_us * intra_alpha_factor
        self.intra_beta_us = self.inter_beta_us * intra_beta_factor
        self.aggregate_leader_nic = aggregate_leader_nic
        self.leader_beta_us = self.inter_beta_us / self.topology.ranks_per_node
        self.nic_message_us = (
            nic_message_us if nic_message_us is not None else software_overhead_us
        )
        # Full-node injection bandwidth, us per byte.
        self.node_beta_us = 1.0 / (machine.node_injection_gbs * 1e9) * 1e6

    # -- per-round pricing ------------------------------------------------------

    def edge_costs_us(self, round_: CommRound) -> np.ndarray:
        """Per-message wire cost under the edge's link class."""
        if round_.n_messages == 0:
            return np.zeros(0)
        intra = self.topology.node_of(round_.src) == self.topology.node_of(round_.dst)
        nbytes = round_.nbytes.astype(np.float64)
        inter_beta = np.full(round_.n_messages, self.inter_beta_us)
        if self.aggregate_leader_nic:
            leader_edge = (self.topology.leader_of(round_.src) == round_.src) & (
                self.topology.leader_of(round_.dst) == round_.dst
            )
            inter_beta[leader_edge] = self.leader_beta_us
        return np.where(
            intra,
            self.intra_alpha_us + nbytes * self.intra_beta_us,
            self.inter_alpha_us + nbytes * inter_beta,
        )

    def rank_round_us(self, round_: CommRound, n_ranks: int) -> np.ndarray:
        """Per-rank busy time of one round (send + receive serialization)."""
        costs = self.edge_costs_us(round_)
        if costs.size == 0:
            return np.zeros(n_ranks)
        sends = np.bincount(round_.src, weights=costs, minlength=n_ranks)
        recvs = np.bincount(round_.dst, weights=costs, minlength=n_ranks)
        return sends + recvs

    def node_nic_us(self, round_: CommRound) -> np.ndarray:
        """Per-node NIC drain time of one round (send + receive sides).

        Only inter-node messages touch the NIC; each occupies both
        endpoint nodes' NICs for ``nic_message_us + bytes * node_beta``.
        """
        n_nodes = self.topology.n_nodes
        if round_.n_messages == 0:
            return np.zeros(n_nodes)
        src_node = self.topology.node_of(round_.src)
        dst_node = self.topology.node_of(round_.dst)
        inter = src_node != dst_node
        if not inter.any():
            return np.zeros(n_nodes)
        cost = self.nic_message_us + round_.nbytes[inter] * self.node_beta_us
        sends = np.bincount(src_node[inter], weights=cost, minlength=n_nodes)
        recvs = np.bincount(dst_node[inter], weights=cost, minlength=n_nodes)
        return sends + recvs

    def round_us(self, round_: CommRound, n_ranks: int) -> float:
        """Bulk-synchronous round time: the slowest resource wins.

        A round ends when the busiest rank has processed its messages AND
        the busiest node NIC has drained its inter-node traffic.
        """
        per_rank = self.rank_round_us(round_, n_ranks)
        rank_max = float(per_rank.max()) if per_rank.size else 0.0
        nic = self.node_nic_us(round_)
        nic_max = float(nic.max()) if nic.size else 0.0
        return max(rank_max, nic_max)

    # -- log aggregation --------------------------------------------------------

    def log_us(self, rounds: list[CommRound], n_ranks: int) -> dict[str, float]:
        """Total and per-phase-family round time of a whole comm log."""
        out: dict[str, float] = {"total": 0.0}
        for round_ in rounds:
            t = self.round_us(round_, n_ranks)
            out["total"] += t
            out[round_.phase] = out.get(round_.phase, 0.0) + t
        return out

    def rank_log_us(self, rounds: list[CommRound], n_ranks: int) -> np.ndarray:
        """Per-rank busy time summed over a comm log (imbalance input)."""
        total = np.zeros(n_ranks)
        for round_ in rounds:
            total += self.rank_round_us(round_, n_ranks)
        return total

    def allreduce_us(self, n_ranks: int, nbytes: float = 8.0) -> float:
        """Small allreduce cost, delegated to the shared tree estimate."""
        return float(self.network.allreduce_us(n_ranks, nbytes))
