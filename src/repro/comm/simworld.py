"""A world of simulated MPI ranks with traffic accounting.

Collectives operate on lists indexed by rank (the whole world's data is
resident in one process), which keeps the semantics of buffer-based MPI
(mpi4py's upper-case methods) while making tests deterministic: sums are
performed in rank order, so results are reproducible bit-for-bit.

A :class:`~repro.resilience.faults.FaultInjector` can be attached (the
``fault_injector`` attribute or constructor argument) to exercise the
recovery paths: point-to-point buffers pass through its ``deliver`` hook
(drop / corrupt / delayed-stale delivery) and every collective consults
``on_collective``, which raises
:class:`~repro.resilience.faults.RankFailedError` for scheduled rank
deaths.  Traffic statistics count *attempted* traffic -- a dropped
message was still sent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid a runtime repro.resilience dependency
    from repro.resilience.faults import FaultInjector

__all__ = ["SimWorld", "TrafficStats"]


@dataclass
class TrafficStats:
    """Counters of simulated network traffic."""

    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    barrier_calls: int = 0

    def reset(self) -> None:
        self.allreduce_calls = 0
        self.allreduce_bytes = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0
        self.barrier_calls = 0


class SimWorld:
    """N simulated ranks; collectives take per-rank data lists."""

    def __init__(self, size: int, fault_injector: "FaultInjector | None" = None) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.stats = TrafficStats()
        self.fault_injector = fault_injector

    def _check(self, per_rank: list) -> None:
        if len(per_rank) != self.size:
            raise ValueError(f"expected {self.size} per-rank entries, got {len(per_rank)}")

    def _collective(self, op: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.on_collective(op)

    # -- collectives ----------------------------------------------------------

    def allreduce_scalar(self, values: list[float], op: str = "sum") -> float:
        """Allreduce of one scalar per rank; returns the reduced value."""
        self._check(values)
        self._collective("allreduce_scalar")
        self.stats.allreduce_calls += 1
        self.stats.allreduce_bytes += 8 * self.size
        if op == "sum":
            return float(np.sum(np.asarray(values, dtype=np.float64)))
        if op == "max":
            return float(np.max(values))
        if op == "min":
            return float(np.min(values))
        raise ValueError(f"unknown op {op!r}")

    def allreduce_array(self, arrays: list[np.ndarray], op: str = "sum") -> np.ndarray:
        """Elementwise allreduce of equally-shaped per-rank arrays."""
        self._check(arrays)
        self._collective("allreduce_array")
        self.stats.allreduce_calls += 1
        self.stats.allreduce_bytes += sum(a.nbytes for a in arrays)
        stack = np.stack(arrays)
        if op == "sum":
            return stack.sum(axis=0)
        if op == "max":
            return stack.max(axis=0)
        if op == "min":
            return stack.min(axis=0)
        raise ValueError(f"unknown op {op!r}")

    def exchange(
        self, sends: dict[tuple[int, int], np.ndarray]
    ) -> dict[tuple[int, int], np.ndarray]:
        """Point-to-point exchange.

        ``sends[(src, dst)]`` is the buffer rank ``src`` sends to ``dst``;
        the return maps the same keys to the delivered buffers (copies).
        With a fault injector attached, the delivered buffer may be
        zeroed (drop), bit-flipped (corruption) or replaced by the
        previous buffer sent on that edge (delayed delivery).
        """
        out = {}
        for (src, dst), buf in sends.items():
            if not (0 <= src < self.size and 0 <= dst < self.size):
                raise ValueError(f"invalid ranks in send ({src}->{dst})")
            if src != dst:
                self.stats.p2p_messages += 1
                self.stats.p2p_bytes += buf.nbytes
            delivered = buf
            if self.fault_injector is not None:
                delivered = self.fault_injector.deliver(src, dst, buf)
            out[(src, dst)] = np.array(delivered, copy=True)
        return out

    def barrier(self) -> None:
        self._collective("barrier")
        self.stats.barrier_calls += 1

    def publish_metrics(self, metrics, prefix: str = "comm") -> None:
        """Snapshot the traffic counters into a metrics registry.

        Convenience wrapper over
        :func:`repro.observability.bridge.publish_traffic_stats`, so a
        driver holding only the world can feed the unified record.
        """
        from repro.observability.bridge import publish_traffic_stats

        publish_traffic_stats(self.stats, metrics, prefix=prefix)

    def gather(self, values: list, root: int = 0) -> list:
        """Gather per-rank values at rank ``root``.

        The whole world lives in one process, so the full list is the
        root's receive buffer and is returned directly (callers acting as
        non-root ranks should ignore it, as with MPI's ``Gather``).
        ``root`` determines the traffic accounting: every rank except the
        root sends it one message, counted in both messages and bytes.
        """
        self._check(values)
        if not 0 <= root < self.size:
            raise ValueError(f"invalid root rank {root}")
        self._collective("gather")
        for rank, value in enumerate(values):
            if rank == root:
                continue
            self.stats.p2p_messages += 1
            try:
                self.stats.p2p_bytes += np.asarray(value).nbytes
            except (TypeError, ValueError):
                pass  # non-numeric payloads count as messages only
        return list(values)
