"""A world of simulated MPI ranks with traffic accounting.

Collectives operate on lists indexed by rank (the whole world's data is
resident in one process), which keeps the semantics of buffer-based MPI
(mpi4py's upper-case methods) while making tests deterministic: sums are
performed in rank order, so results are reproducible bit-for-bit.

A :class:`~repro.resilience.faults.FaultInjector` can be attached (the
``fault_injector`` attribute or constructor argument) to exercise the
recovery paths: point-to-point buffers pass through its ``deliver`` hook
(drop / corrupt / delayed-stale delivery) and every collective consults
``on_collective``, which raises
:class:`~repro.resilience.faults.RankFailedError` for scheduled rank
deaths.  Traffic statistics count *attempted* traffic -- a dropped
message was still sent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid runtime repro.resilience / observability dependencies
    from repro.observability.fleet.rank import FleetTelemetry
    from repro.resilience.faults import FaultInjector

__all__ = ["SimWorld", "TrafficStats"]


@dataclass
class TrafficStats:
    """Counters of simulated network traffic.

    World totals plus per-rank send/receive accounting: the imbalance
    analytics (:mod:`repro.observability.fleet.imbalance`) need to know
    *which* rank moved the bytes, not just that the world did -- a
    partition that concentrates shared faces on one rank shows up here
    first.  The per-rank dicts are keyed by rank id and only hold ranks
    that actually communicated.
    """

    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    barrier_calls: int = 0
    sent_messages: dict[int, int] = field(default_factory=dict)
    sent_bytes: dict[int, int] = field(default_factory=dict)
    recv_messages: dict[int, int] = field(default_factory=dict)
    recv_bytes: dict[int, int] = field(default_factory=dict)

    def record_p2p(self, src: int, dst: int, nbytes: int) -> None:
        """Count one point-to-point message in both world and rank views."""
        self.p2p_messages += 1
        self.p2p_bytes += nbytes
        self.sent_messages[src] = self.sent_messages.get(src, 0) + 1
        self.sent_bytes[src] = self.sent_bytes.get(src, 0) + nbytes
        self.recv_messages[dst] = self.recv_messages.get(dst, 0) + 1
        self.recv_bytes[dst] = self.recv_bytes.get(dst, 0) + nbytes

    def rank_totals(self, rank: int) -> dict[str, int]:
        """One rank's traffic: sent/received messages and bytes."""
        return {
            "sent_messages": self.sent_messages.get(rank, 0),
            "sent_bytes": self.sent_bytes.get(rank, 0),
            "recv_messages": self.recv_messages.get(rank, 0),
            "recv_bytes": self.recv_bytes.get(rank, 0),
        }

    def reset(self) -> None:
        self.allreduce_calls = 0
        self.allreduce_bytes = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0
        self.barrier_calls = 0
        self.sent_messages.clear()
        self.sent_bytes.clear()
        self.recv_messages.clear()
        self.recv_bytes.clear()


class SimWorld:
    """N simulated ranks; collectives take per-rank data lists."""

    def __init__(
        self,
        size: int,
        fault_injector: "FaultInjector | None" = None,
        fleet: "FleetTelemetry | None" = None,
    ) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.stats = TrafficStats()
        self.fault_injector = fault_injector
        # Per-rank telemetry (repro.observability.fleet); also settable
        # after construction via FleetTelemetry.attach(world).
        self.fleet = fleet

    def _check(self, per_rank: list) -> None:
        if len(per_rank) != self.size:
            raise ValueError(f"expected {self.size} per-rank entries, got {len(per_rank)}")

    def _collective(self, op: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.on_collective(op)

    # -- collectives ----------------------------------------------------------

    def allreduce_scalar(self, values: list[float], op: str = "sum") -> float:
        """Allreduce of one scalar per rank; returns the reduced value."""
        self._check(values)
        self._collective("allreduce_scalar")
        self.stats.allreduce_calls += 1
        self.stats.allreduce_bytes += 8 * self.size
        if op == "sum":
            return float(np.sum(np.asarray(values, dtype=np.float64)))
        if op == "max":
            return float(np.max(values))
        if op == "min":
            return float(np.min(values))
        raise ValueError(f"unknown op {op!r}")

    def allreduce_array(self, arrays: list[np.ndarray], op: str = "sum") -> np.ndarray:
        """Elementwise allreduce of equally-shaped per-rank arrays."""
        self._check(arrays)
        self._collective("allreduce_array")
        self.stats.allreduce_calls += 1
        self.stats.allreduce_bytes += sum(a.nbytes for a in arrays)
        stack = np.stack(arrays)
        if op == "sum":
            return stack.sum(axis=0)
        if op == "max":
            return stack.max(axis=0)
        if op == "min":
            return stack.min(axis=0)
        raise ValueError(f"unknown op {op!r}")

    def exchange(
        self, sends: dict[tuple[int, int], np.ndarray]
    ) -> dict[tuple[int, int], np.ndarray]:
        """Point-to-point exchange.

        ``sends[(src, dst)]`` is the buffer rank ``src`` sends to ``dst``;
        the return maps the same keys to the delivered buffers (copies).
        With a fault injector attached, the delivered buffer may be
        zeroed (drop), bit-flipped (corruption) or replaced by the
        previous buffer sent on that edge (delayed delivery).
        """
        out = {}
        for (src, dst), buf in sends.items():
            if not (0 <= src < self.size and 0 <= dst < self.size):
                raise ValueError(f"invalid ranks in send ({src}->{dst})")
            if src != dst:
                self.stats.record_p2p(src, dst, buf.nbytes)
            delivered = buf
            if self.fault_injector is not None:
                delivered = self.fault_injector.deliver(src, dst, buf)
            out[(src, dst)] = np.array(delivered, copy=True)
        return out

    def barrier(self) -> None:
        self._collective("barrier")
        self.stats.barrier_calls += 1

    def publish_metrics(self, metrics, prefix: str = "comm") -> None:
        """Snapshot the traffic counters into a metrics registry.

        Convenience wrapper over
        :func:`repro.observability.bridge.publish_traffic_stats`, so a
        driver holding only the world can feed the unified record.
        """
        from repro.observability.bridge import publish_traffic_stats

        publish_traffic_stats(self.stats, metrics, prefix=prefix)

    def gather(self, values: list, root: int = 0) -> list:
        """Gather per-rank values at rank ``root``.

        The whole world lives in one process, so the full list is the
        root's receive buffer and is returned directly (callers acting as
        non-root ranks should ignore it, as with MPI's ``Gather``).
        ``root`` determines the traffic accounting: every rank except the
        root sends it one message, counted in both messages and bytes.
        """
        self._check(values)
        if not 0 <= root < self.size:
            raise ValueError(f"invalid root rank {root}")
        self._collective("gather")
        for rank, value in enumerate(values):
            if rank == root:
                continue
            try:
                nbytes = int(np.asarray(value).nbytes)
            except (TypeError, ValueError):
                nbytes = 0  # non-numeric payloads count as messages only
            self.stats.record_p2p(rank, root, nbytes)
        return list(values)
