"""A world of simulated MPI ranks with traffic accounting.

Collectives operate on lists indexed by rank (the whole world's data is
resident in one process), which keeps the semantics of buffer-based MPI
(mpi4py's upper-case methods) while making tests deterministic: sums are
performed in rank order, so results are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SimWorld", "TrafficStats"]


@dataclass
class TrafficStats:
    """Counters of simulated network traffic."""

    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    barrier_calls: int = 0

    def reset(self) -> None:
        self.allreduce_calls = 0
        self.allreduce_bytes = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0
        self.barrier_calls = 0


class SimWorld:
    """N simulated ranks; collectives take per-rank data lists."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.stats = TrafficStats()

    def _check(self, per_rank: list) -> None:
        if len(per_rank) != self.size:
            raise ValueError(f"expected {self.size} per-rank entries, got {len(per_rank)}")

    # -- collectives ----------------------------------------------------------

    def allreduce_scalar(self, values: list[float], op: str = "sum") -> float:
        """Allreduce of one scalar per rank; returns the reduced value."""
        self._check(values)
        self.stats.allreduce_calls += 1
        self.stats.allreduce_bytes += 8 * self.size
        if op == "sum":
            return float(np.sum(np.asarray(values, dtype=np.float64)))
        if op == "max":
            return float(np.max(values))
        if op == "min":
            return float(np.min(values))
        raise ValueError(f"unknown op {op!r}")

    def allreduce_array(self, arrays: list[np.ndarray], op: str = "sum") -> np.ndarray:
        """Elementwise allreduce of equally-shaped per-rank arrays."""
        self._check(arrays)
        self.stats.allreduce_calls += 1
        self.stats.allreduce_bytes += sum(a.nbytes for a in arrays)
        stack = np.stack(arrays)
        if op == "sum":
            return stack.sum(axis=0)
        if op == "max":
            return stack.max(axis=0)
        if op == "min":
            return stack.min(axis=0)
        raise ValueError(f"unknown op {op!r}")

    def exchange(
        self, sends: dict[tuple[int, int], np.ndarray]
    ) -> dict[tuple[int, int], np.ndarray]:
        """Point-to-point exchange.

        ``sends[(src, dst)]`` is the buffer rank ``src`` sends to ``dst``;
        the return maps the same keys to the delivered buffers (copies).
        """
        out = {}
        for (src, dst), buf in sends.items():
            if not (0 <= src < self.size and 0 <= dst < self.size):
                raise ValueError(f"invalid ranks in send ({src}->{dst})")
            if src != dst:
                self.stats.p2p_messages += 1
                self.stats.p2p_bytes += buf.nbytes
            out[(src, dst)] = np.array(buf, copy=True)
        return out

    def barrier(self) -> None:
        self.stats.barrier_calls += 1

    def gather(self, values: list, root: int = 0) -> list:
        """Gather per-rank values at the root (returns the full list)."""
        self._check(values)
        self.stats.p2p_messages += self.size - 1
        return list(values)
