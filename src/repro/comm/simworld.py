"""A world of simulated MPI ranks with traffic accounting.

Collectives operate on lists indexed by rank (the whole world's data is
resident in one process), which keeps the semantics of buffer-based MPI
(mpi4py's upper-case methods) while making tests deterministic: sums are
performed in rank order, so results are reproducible bit-for-bit.

A :class:`~repro.resilience.faults.FaultInjector` can be attached (the
``fault_injector`` attribute or constructor argument) to exercise the
recovery paths: point-to-point buffers pass through its ``deliver`` hook
(drop / corrupt / delayed-stale delivery) and every collective consults
``on_collective``, which raises
:class:`~repro.resilience.faults.RankFailedError` for scheduled rank
deaths.  Traffic statistics count *attempted* traffic -- a dropped
message was still sent.

Two hardening layers (both off by default, so the raw world keeps its
exact legacy traffic semantics) defend against those faults instead of
merely suffering them:

* ``retry=RetryPolicy(...)`` turns :meth:`exchange` into a reliable
  channel: buffers travel with per-edge sequence numbers and CRC32
  checksums, failed deliveries are retransmitted with jittered backoff,
  and the sequence numbers keep :class:`TrafficStats` idempotent under
  retries (logical messages count once; ``retransmissions`` counts the
  extra wire traffic).  Exhausting the budget raises
  :class:`~repro.comm.reliable.CommTimeoutError` -- never a hang.
* ``verify_collectives=True`` replicates every allreduce and compares the
  replicas' checksums, catching silent data corruption planted in a
  collective result (``collective_sdc`` faults); persistent disagreement
  raises :class:`~repro.comm.reliable.CollectiveIntegrityError`, the
  rollback trigger for :class:`~repro.resilience.distributed` recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.comm.reliable import (
    CollectiveIntegrityError,
    CommTimeoutError,
    RetryPolicy,
    payload_checksum,
)

if TYPE_CHECKING:  # avoid runtime repro.resilience / observability dependencies
    from repro.observability.fleet.rank import FleetTelemetry
    from repro.resilience.faults import FaultInjector

__all__ = ["SimWorld", "TrafficStats"]


@dataclass
class TrafficStats:
    """Counters of simulated network traffic.

    World totals plus per-rank send/receive accounting: the imbalance
    analytics (:mod:`repro.observability.fleet.imbalance`) need to know
    *which* rank moved the bytes, not just that the world did -- a
    partition that concentrates shared faces on one rank shows up here
    first.  The per-rank dicts are keyed by rank id and only hold ranks
    that actually communicated.
    """

    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    barrier_calls: int = 0
    #: Reliability counters (populated only by a hardened world): extra
    #: wire sends beyond the first attempt, stale deliveries recognized by
    #: their sequence number, messages that exhausted the retry budget,
    #: and collective replicas that failed the integrity comparison.
    retransmissions: int = 0
    duplicates: int = 0
    timeouts: int = 0
    integrity_failures: int = 0
    sent_messages: dict[int, int] = field(default_factory=dict)
    sent_bytes: dict[int, int] = field(default_factory=dict)
    recv_messages: dict[int, int] = field(default_factory=dict)
    recv_bytes: dict[int, int] = field(default_factory=dict)

    def record_p2p(self, src: int, dst: int, nbytes: int) -> None:
        """Count one point-to-point message in both world and rank views."""
        self.p2p_messages += 1
        self.p2p_bytes += nbytes
        self.sent_messages[src] = self.sent_messages.get(src, 0) + 1
        self.sent_bytes[src] = self.sent_bytes.get(src, 0) + nbytes
        self.recv_messages[dst] = self.recv_messages.get(dst, 0) + 1
        self.recv_bytes[dst] = self.recv_bytes.get(dst, 0) + nbytes

    def record_p2p_batch(
        self, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray
    ) -> None:
        """Count a whole round of point-to-point messages at once.

        Vectorized equivalent of calling :meth:`record_p2p` per message
        (self-messages ``src == dst`` are skipped, matching
        :meth:`SimWorld.exchange`); byte weights go through ``bincount``,
        which is exact for integer byte counts below 2**53.  This is what
        keeps per-rank accounting O(messages) instead of O(ranks^2) dict
        churn when a :class:`~repro.comm.batched.BatchedWorld` replays a
        10^4-rank exchange round.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        wire = src != dst
        if not wire.all():
            src, dst, nbytes = src[wire], dst[wire], nbytes[wire]
        if src.size == 0:
            return
        self.p2p_messages += int(src.size)
        self.p2p_bytes += int(nbytes.sum())
        for ranks, counts, messages, byte_totals in (
            (src, nbytes, self.sent_messages, self.sent_bytes),
            (dst, nbytes, self.recv_messages, self.recv_bytes),
        ):
            n_msg = np.bincount(ranks)
            n_bytes = np.bincount(ranks, weights=counts)
            for r in np.flatnonzero(n_msg):
                r = int(r)
                messages[r] = messages.get(r, 0) + int(n_msg[r])
                byte_totals[r] = byte_totals.get(r, 0) + int(n_bytes[r])

    def rank_totals(self, rank: int) -> dict[str, int]:
        """One rank's traffic: sent/received messages and bytes."""
        return {
            "sent_messages": self.sent_messages.get(rank, 0),
            "sent_bytes": self.sent_bytes.get(rank, 0),
            "recv_messages": self.recv_messages.get(rank, 0),
            "recv_bytes": self.recv_bytes.get(rank, 0),
        }

    def reset(self) -> None:
        self.allreduce_calls = 0
        self.allreduce_bytes = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0
        self.barrier_calls = 0
        self.retransmissions = 0
        self.duplicates = 0
        self.timeouts = 0
        self.integrity_failures = 0
        self.sent_messages.clear()
        self.sent_bytes.clear()
        self.recv_messages.clear()
        self.recv_bytes.clear()

    def absorb(self, other: "TrafficStats") -> None:
        """Fold another stats object into this one (campaign accounting).

        Elastic recovery rebuilds the :class:`SimWorld`; the chaos report
        wants totals across every world a scenario lived in, so the old
        world's counters are absorbed before it is discarded.
        """
        self.allreduce_calls += other.allreduce_calls
        self.allreduce_bytes += other.allreduce_bytes
        self.p2p_messages += other.p2p_messages
        self.p2p_bytes += other.p2p_bytes
        self.barrier_calls += other.barrier_calls
        self.retransmissions += other.retransmissions
        self.duplicates += other.duplicates
        self.timeouts += other.timeouts
        self.integrity_failures += other.integrity_failures
        for mine, theirs in (
            (self.sent_messages, other.sent_messages),
            (self.sent_bytes, other.sent_bytes),
            (self.recv_messages, other.recv_messages),
            (self.recv_bytes, other.recv_bytes),
        ):
            for rank, n in theirs.items():
                mine[rank] = mine.get(rank, 0) + n


class SimWorld:
    """N simulated ranks; collectives take per-rank data lists."""

    def __init__(
        self,
        size: int,
        fault_injector: "FaultInjector | None" = None,
        fleet: "FleetTelemetry | None" = None,
        retry: RetryPolicy | None = None,
        verify_collectives: bool = False,
    ) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.stats = TrafficStats()
        self.fault_injector = fault_injector
        # Per-rank telemetry (repro.observability.fleet); also settable
        # after construction via FleetTelemetry.attach(world).
        self.fleet = fleet
        # Reliable-delivery policy for exchange() and bounded integrity
        # retries for verified collectives; None keeps the raw channel.
        self.retry = retry
        # Replicate allreduces and compare replica checksums (SDC guard).
        self.verify_collectives = verify_collectives
        # Per-edge sequence numbers and the previous payload checksum,
        # for retransmission dedup and stale-delivery classification.
        self._seq: dict[tuple[int, int], int] = {}
        self._edge_crc: dict[tuple[int, int], int] = {}

    def _check(self, per_rank: list) -> None:
        if len(per_rank) != self.size:
            raise ValueError(f"expected {self.size} per-rank entries, got {len(per_rank)}")

    def _collective(self, op: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.on_collective(op)

    # -- collective result integrity -------------------------------------------

    def _observe_result(self, op: str, result: np.ndarray) -> np.ndarray:
        """Pass a collective result through the injector's SDC hook."""
        inj = self.fault_injector
        if inj is None or not hasattr(inj, "deliver_collective"):
            return result
        return inj.deliver_collective(op, result)

    def _collective_result(
        self, op: str, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Produce a collective result, replicated-checksum verified if enabled.

        With ``verify_collectives`` the reduction runs twice and the two
        replicas' payload checksums are compared: an SDC planted in either
        replica surfaces as a mismatch, the collective is retried (the
        transient-fault model: scheduled faults fire once), and persistent
        disagreement raises :class:`CollectiveIntegrityError` for the
        recovery layer to roll back on.
        """
        if not self.verify_collectives:
            return self._observe_result(op, compute())
        budget = self.retry.max_retries if self.retry is not None else 1
        attempts = 0
        while True:
            attempts += 1
            first = self._observe_result(op, compute())
            second = self._observe_result(op, compute())
            if payload_checksum(first) == payload_checksum(second):
                return first
            self.stats.integrity_failures += 1
            if attempts > budget:
                raise CollectiveIntegrityError(op, attempts)
            if self.retry is not None:
                self.retry.wait(attempts)

    # -- collectives ----------------------------------------------------------

    def allreduce_scalar(self, values: list[float], op: str = "sum") -> float:
        """Allreduce of one scalar per rank; returns the reduced value."""
        self._check(values)
        self._collective("allreduce_scalar")
        self.stats.allreduce_calls += 1
        self.stats.allreduce_bytes += 8 * self.size

        def compute() -> np.ndarray:
            if op == "sum":
                return np.asarray([np.sum(np.asarray(values, dtype=np.float64))])
            if op == "max":
                return np.asarray([np.max(values)], dtype=np.float64)
            if op == "min":
                return np.asarray([np.min(values)], dtype=np.float64)
            raise ValueError(f"unknown op {op!r}")

        return float(self._collective_result("allreduce_scalar", compute)[0])

    def allreduce_array(self, arrays: list[np.ndarray], op: str = "sum") -> np.ndarray:
        """Elementwise allreduce of equally-shaped per-rank arrays."""
        self._check(arrays)
        self._collective("allreduce_array")
        self.stats.allreduce_calls += 1
        self.stats.allreduce_bytes += sum(a.nbytes for a in arrays)

        def compute() -> np.ndarray:
            stack = np.stack(arrays)
            if op == "sum":
                return stack.sum(axis=0)
            if op == "max":
                return stack.max(axis=0)
            if op == "min":
                return stack.min(axis=0)
            raise ValueError(f"unknown op {op!r}")

        return self._collective_result("allreduce_array", compute)

    def exchange(
        self, sends: dict[tuple[int, int], np.ndarray]
    ) -> dict[tuple[int, int], np.ndarray]:
        """Point-to-point exchange.

        ``sends[(src, dst)]`` is the buffer rank ``src`` sends to ``dst``;
        the return maps the same keys to the delivered buffers (copies).
        With a fault injector attached, the delivered buffer may be
        zeroed (drop), bit-flipped (corruption) or replaced by the
        previous buffer sent on that edge (delayed delivery).

        With a :class:`~repro.comm.reliable.RetryPolicy` attached
        (``retry=``), every buffer is validated against its envelope
        checksum and retransmitted on mismatch -- see :meth:`_deliver` --
        so the faults above are survived instead of silently absorbed.
        """
        out = {}
        for (src, dst), buf in sends.items():
            if not (0 <= src < self.size and 0 <= dst < self.size):
                raise ValueError(f"invalid ranks in send ({src}->{dst})")
            if src != dst:
                self.stats.record_p2p(src, dst, buf.nbytes)
            if self.retry is not None:
                delivered = self._deliver(src, dst, buf)
            elif self.fault_injector is not None:
                delivered = self.fault_injector.deliver(src, dst, buf)
            else:
                delivered = buf
            out[(src, dst)] = np.array(delivered, copy=True)
        return out

    def _deliver(self, src: int, dst: int, buf: np.ndarray) -> np.ndarray:
        """Reliable delivery of one buffer: checksum, dedupe, retransmit.

        The logical message was already counted by the caller; every
        *extra* wire attempt increments ``stats.retransmissions`` and a
        delivery recognized as a stale earlier sequence number increments
        ``stats.duplicates`` (and is discarded -- idempotence).  Exhausting
        ``retry.max_retries`` retransmissions raises
        :class:`CommTimeoutError`.
        """
        edge = (src, dst)
        seq = self._seq.get(edge, 0)
        self._seq[edge] = seq + 1
        crc = payload_checksum(buf)
        prev_crc = self._edge_crc.get(edge)
        self._edge_crc[edge] = crc
        attempts = 0
        while True:
            attempts += 1
            delivered = buf
            if self.fault_injector is not None:
                delivered = self.fault_injector.deliver(src, dst, buf)
            got = payload_checksum(delivered)
            if got == crc:
                return delivered
            if prev_crc is not None and got == prev_crc:
                # Stale delivery of the previous sequence number: a
                # duplicate, not new data -- drop it and retransmit.
                self.stats.duplicates += 1
            if attempts > self.retry.max_retries:
                self.stats.timeouts += 1
                raise CommTimeoutError(src, dst, attempts, "checksum never validated")
            self.stats.retransmissions += 1
            self.retry.wait(attempts)

    def barrier(self) -> None:
        self._collective("barrier")
        self.stats.barrier_calls += 1

    def publish_metrics(self, metrics, prefix: str = "comm") -> None:
        """Snapshot the traffic counters into a metrics registry.

        Convenience wrapper over
        :func:`repro.observability.bridge.publish_traffic_stats`, so a
        driver holding only the world can feed the unified record.
        """
        from repro.observability.bridge import publish_traffic_stats

        publish_traffic_stats(self.stats, metrics, prefix=prefix)

    def gather(self, values: list, root: int = 0) -> list:
        """Gather per-rank values at rank ``root``.

        The whole world lives in one process, so the full list is the
        root's receive buffer and is returned directly (callers acting as
        non-root ranks should ignore it, as with MPI's ``Gather``).
        ``root`` determines the traffic accounting: every rank except the
        root sends it one message, counted in both messages and bytes.
        """
        self._check(values)
        if not 0 <= root < self.size:
            raise ValueError(f"invalid root rank {root}")
        self._collective("gather")
        for rank, value in enumerate(values):
            if rank == root:
                continue
            try:
                nbytes = int(np.asarray(value).nbytes)
            except (TypeError, ValueError):
                nbytes = 0  # non-numeric payloads count as messages only
            self.stats.record_p2p(rank, root, nbytes)
        return list(values)
