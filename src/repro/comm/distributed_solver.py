"""A distributed Jacobi-CG over the simulated rank world.

Runs the same Krylov iteration as the single-rank solver but with the
SPMD data layout of the production code: every rank owns a chunk of
elements, operator applications are rank-local, continuity comes from the
two-phase distributed gather--scatter, and inner products are local dots
plus one allreduce.  Tests assert rank-count invariance of the solution,
and the traffic counters give the performance model's per-iteration
communication counts an executable definition (2 allreduces + 1 halo
exchange per CG iteration -- exactly what ``SEMWorkModel`` budgets).
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager

import numpy as np

from repro.comm.distributed_gs import DistributedGatherScatter
from repro.comm.simworld import SimWorld
from repro.solvers.monitor import SolverMonitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.fleet.anomaly import AnomalyMonitor
    from repro.observability.fleet.rank import FleetTelemetry
    from repro.observability.profile.profiler import ContinuousProfiler

__all__ = ["DistributedConjugateGradient"]

LocalOperator = Callable[[int, np.ndarray], np.ndarray]


class DistributedConjugateGradient:
    """CG on per-rank element chunks.

    Parameters
    ----------
    local_amul:
        ``(rank, chunk) -> chunk`` applying the *unassembled* elementwise
        operator to a rank's elements (no communication inside).
    dgs:
        The distributed gather--scatter assembling results across ranks.
    world:
        Supplies the allreduce for inner products.
    local_mask:
        Optional per-rank Dirichlet masks.
    """

    def __init__(
        self,
        local_amul: LocalOperator,
        dgs: DistributedGatherScatter,
        world: SimWorld,
        local_mask: list[np.ndarray] | None = None,
        precond_diag: list[np.ndarray] | None = None,
        tol: float = 1e-8,
        maxiter: int = 500,
        fleet: "FleetTelemetry | None" = None,
        anomalies: "AnomalyMonitor | None" = None,
        profiler: "ContinuousProfiler | None" = None,
    ) -> None:
        self.local_amul = local_amul
        self.dgs = dgs
        self.world = world
        self.local_mask = local_mask
        self.precond_diag = precond_diag
        self.tol = tol
        self.maxiter = maxiter
        # Per-rank telemetry, online iteration-count anomaly detection and
        # the continuous profiler's collective-count attribution; all
        # optional and free when absent.
        self.fleet = fleet
        self.anomalies = anomalies
        self.profiler = profiler
        self._solves = 0
        # 1/multiplicity per rank for unique-dof inner products.
        gmult = dgs._global_multiplicity()
        self._inv_mult = []
        for r in range(world.size):
            w = 1.0 / gmult[dgs.local_unique[r]]
            self._inv_mult.append(w[dgs.local_ids[r]].reshape(-1))

    # -- distributed primitives --------------------------------------------

    def _rank_span(self, rank: int, name: str, **tags) -> "ContextManager":
        fleet = self.fleet
        if fleet is None:
            return nullcontext()
        return fleet[rank].span(name, **tags)

    def _amul(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        local = []
        for r, c in enumerate(chunks):
            with self._rank_span(r, "fleet.cg.amul", cat="cg"):
                local.append(self.local_amul(r, c))
        out = self.dgs.add(local)
        if self.local_mask is not None:
            out = [o * m for o, m in zip(out, self.local_mask)]
        return out

    def _dot(self, a: list[np.ndarray], b: list[np.ndarray]) -> float:
        locals_ = [
            float(np.sum(x.reshape(-1) * y.reshape(-1) * w))
            for x, y, w in zip(a, b, self._inv_mult)
        ]
        return self.world.allreduce_scalar(locals_)

    def _apply_precond(
        self, r: list[np.ndarray], out: list[np.ndarray] | None = None
    ) -> list[np.ndarray]:
        """Apply the (diagonal) preconditioner; ``out`` reuses buffers."""
        if out is None:
            out = [np.empty_like(c) for c in r]
        if self.precond_diag is None:
            for o, c in zip(out, r):
                np.copyto(o, c)
        else:
            for o, c, d in zip(out, r, self.precond_diag):
                np.multiply(c, d, out=o)
        return out

    # -- the solver -----------------------------------------------------------

    def solve(
        self, b_chunks: list[np.ndarray], x0: list[np.ndarray] | None = None
    ) -> tuple[list[np.ndarray], SolverMonitor]:
        """Solve ``A x = b``; returns per-rank chunks.

        ``x0`` warm-starts the iteration (one extra operator application
        for the true initial residual); the default is a zero guess.  The
        elastic-recovery path resumes a solve from the last consistent
        epoch's solution this way instead of paying full price again.
        """
        mon = SolverMonitor(tol=self.tol, name="dist-cg")
        stats0 = (self.world.stats.allreduce_calls, self.world.stats.p2p_messages)
        if x0 is None:
            x = [np.zeros_like(c) for c in b_chunks]
            r = [c.copy() for c in b_chunks]
        else:
            x = [np.array(c, copy=True) for c in x0]
            ax = self._amul(x)
            r = [b - a for b, a in zip(b_chunks, ax)]
        z = self._apply_precond(r)
        rho = self._dot(r, z)
        rnorm = float(np.sqrt(max(self._dot(r, r), 0.0)))
        if mon.start(rnorm):
            self._record_solve(mon)
            return x, mon
        p = [c.copy() for c in z]

        for _ in range(self.maxiter):
            ap = self._amul(p)
            # statcheck: ignore[hot-loop-allocation] -- the simulated allreduce packs per-rank buffers; production uses MPI buffers
            pap = self._dot(p, ap)
            if pap <= 0.0:
                break
            alpha = rho / pap
            for xr, pr, rr, apr in zip(x, p, r, ap):
                xr += alpha * pr
                rr -= alpha * apr
            # statcheck: ignore[hot-loop-allocation] -- the simulated allreduce packs per-rank buffers; production uses MPI buffers
            rnorm = float(np.sqrt(max(self._dot(r, r), 0.0)))
            if mon.step(rnorm):
                break
            # statcheck: ignore[hot-loop-allocation] -- z's chunk buffers are reused via out=
            z = self._apply_precond(r, out=z)
            # statcheck: ignore[hot-loop-allocation] -- the simulated allreduce packs per-rank buffers; production uses MPI buffers
            rho_new = self._dot(r, z)
            beta = rho_new / rho
            rho = rho_new
            # In-place recurrence update per chunk: beta*p + z is bitwise
            # identical to z + beta*p and reuses the direction buffers.
            for zr, pr in zip(z, p):
                pr *= beta
                pr += zr
        self._record_solve(mon)
        return x, mon

    def _record_solve(self, mon: SolverMonitor) -> None:
        """Feed one finished solve to the fleet metrics and anomaly sink."""
        self._solves += 1
        if self.fleet is not None:
            for rt in self.fleet:
                rt.metrics.counter("fleet.cg.solves").inc()
                rt.metrics.histogram("fleet.cg.iterations").record(float(mon.iterations))
        if self.anomalies is not None:
            self.anomalies.observe(
                "krylov.dist-cg.iterations", float(mon.iterations), step=self._solves
            )
