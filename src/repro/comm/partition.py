"""Element partitioning for the simulated ranks.

Two strategies, both deterministic:

* linear -- elements in mesh order, contiguous chunks (what Neko does by
  default after mesh generation, relying on generator locality);
* recursive coordinate bisection (RCB) of element centroids -- a classic
  geometric partitioner producing compact subdomains and a good stand-in
  for the graph partitioning production meshes receive offline.
  :func:`rcb_from_centroids` exposes the same split on raw centroid
  arrays, which is how the scaling campaign partitions its synthetic
  structured meshes without building a :class:`~repro.sem.mesh.HexMesh`.

``partition_quality`` reports balance and the shared-node halo sizes that
drive the gather--scatter communication volume in the performance model,
and ``rank_neighbors`` the rank adjacency the topology-aware exchange
stages over.  Both are fully vectorized: the per-shared-node Python scan
the original implementation carried was O(nodes) group objects -- at the
campaign's 10^3..10^4 ranks (hundreds of thousands of shared nodes) it
dominated setup, so shared-node counting now runs on sorted (gid, rank)
runs with ``reduceat``-style boundary arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.sem.mesh import HexMesh

__all__ = [
    "linear_partition",
    "rcb_partition",
    "rcb_from_centroids",
    "partition_quality",
    "rank_neighbors",
]


def linear_partition(nelv: int, nranks: int) -> np.ndarray:
    """Contiguous chunks of (as equal as possible) size; returns rank per element."""
    if nranks < 1 or nelv < 1:
        raise ValueError("need nelv >= 1 and nranks >= 1")
    if nranks > nelv:
        raise ValueError(f"more ranks ({nranks}) than elements ({nelv})")
    counts = np.full(nranks, nelv // nranks)
    counts[: nelv % nranks] += 1
    return np.repeat(np.arange(nranks), counts)


def _centroids(mesh: HexMesh) -> np.ndarray:
    return mesh.corner_coords.reshape(mesh.nelv, 8, 3).mean(axis=1)


def rcb_partition(mesh: HexMesh, nranks: int) -> np.ndarray:
    """Recursive coordinate bisection of element centroids.

    At each level the current element set splits along its longest
    coordinate extent at the median, with part sizes proportional to the
    number of ranks assigned to each side (handles non-power-of-two
    counts).
    """
    if nranks > mesh.nelv:
        raise ValueError(f"more ranks ({nranks}) than elements ({mesh.nelv})")
    return rcb_from_centroids(_centroids(mesh), nranks)


def rcb_from_centroids(cent: np.ndarray, nranks: int) -> np.ndarray:
    """RCB on a raw ``(nelv, ndim)`` centroid array; returns rank per element."""
    cent = np.asarray(cent, dtype=np.float64)
    nelv = cent.shape[0]
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if nranks > nelv:
        raise ValueError(f"more ranks ({nranks}) than elements ({nelv})")
    owner = np.zeros(nelv, dtype=np.int64)

    def split(idx: np.ndarray, ranks: range) -> None:
        if len(ranks) == 1:
            owner[idx] = ranks.start
            return
        spans = cent[idx].max(axis=0) - cent[idx].min(axis=0)
        axis = int(np.argmax(spans))
        order = idx[np.argsort(cent[idx, axis], kind="stable")]
        n_left_ranks = len(ranks) // 2
        n_left = int(round(len(order) * n_left_ranks / len(ranks)))
        n_left = min(max(n_left, n_left_ranks), len(order) - (len(ranks) - n_left_ranks))
        split(order[:n_left], range(ranks.start, ranks.start + n_left_ranks))
        split(order[n_left:], range(ranks.start + n_left_ranks, ranks.stop))

    split(np.arange(nelv), range(nranks))
    return owner


def _shared_node_runs(
    owner: np.ndarray, global_ids: np.ndarray, points_per_element: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct (gid, rank) holder pairs and each gid's holder count.

    Sorts every node copy by (gid, rank) once, collapses equal pairs, and
    returns ``(pair_gid_run_id, pair_rank, holders_per_gid)`` -- the
    vectorized core shared by :func:`partition_quality` and
    :func:`rank_neighbors`.
    """
    flat = np.asarray(global_ids, dtype=np.int64).reshape(-1)
    node_rank = np.repeat(np.asarray(owner, dtype=np.int64), points_per_element)
    order = np.lexsort((node_rank, flat))
    gid_sorted = flat[order]
    rank_sorted = node_rank[order]
    new_pair = np.empty(flat.size, dtype=bool)
    new_pair[0] = True
    new_pair[1:] = (gid_sorted[1:] != gid_sorted[:-1]) | (
        rank_sorted[1:] != rank_sorted[:-1]
    )
    pair_starts = np.flatnonzero(new_pair)
    pair_gid = gid_sorted[pair_starts]
    pair_rank = rank_sorted[pair_starts]
    new_gid = np.empty(pair_gid.size, dtype=bool)
    new_gid[0] = True
    new_gid[1:] = pair_gid[1:] != pair_gid[:-1]
    gid_run = np.cumsum(new_gid) - 1
    holders_per_gid = np.bincount(gid_run)
    return gid_run, pair_rank, holders_per_gid


def partition_quality(
    owner: np.ndarray, global_ids: np.ndarray, nelv: int, points_per_element: int
) -> dict[str, float]:
    """Balance and halo metrics of a partition.

    ``global_ids`` is the flat node numbering of the space (length
    ``nelv * points_per_element``).  A *shared* node is one whose copies
    live on more than one rank; the per-rank shared count is the message
    volume of the gather--scatter's network phase.
    """
    nranks = int(owner.max()) + 1
    counts = np.bincount(owner, minlength=nranks)
    gid_run, pair_rank, holders_per_gid = _shared_node_runs(
        owner, global_ids, points_per_element
    )
    shared_gid = holders_per_gid > 1
    n_shared_global = int(shared_gid.sum())
    shared_pairs = shared_gid[gid_run]
    shared_per_rank = np.bincount(
        pair_rank[shared_pairs], minlength=nranks
    ).astype(np.float64)
    return {
        "n_ranks": float(nranks),
        "imbalance": float(counts.max() / counts.mean()),
        "shared_nodes_global": float(n_shared_global),
        "max_shared_per_rank": float(shared_per_rank.max()),
        "avg_shared_per_rank": float(shared_per_rank.mean()),
    }


def rank_neighbors(
    owner: np.ndarray, global_ids: np.ndarray, points_per_element: int
) -> list[np.ndarray]:
    """Per-rank sorted neighbor ranks (ranks sharing at least one node).

    The halo adjacency the gather--scatter exchanges over, discovered in
    one vectorized pass: for each shared gid, every ordered pair of its
    holder ranks is a directed neighbor edge.  Holder counts per node are
    tiny (a hex vertex touches <= 8 elements), so the pair expansion is
    O(shared pairs), never O(ranks^2).
    """
    nranks = int(owner.max()) + 1
    gid_run, pair_rank, holders_per_gid = _shared_node_runs(
        owner, global_ids, points_per_element
    )
    shared = holders_per_gid[gid_run] > 1
    ranks = pair_rank[shared]
    if ranks.size == 0:
        return [np.zeros(0, dtype=np.int64) for _ in range(nranks)]
    # All ordered holder pairs per shared gid, by offset arithmetic: each
    # holder entry e (run start s, run length h) pairs with the h entries
    # of its run, so pair p of entry e maps to dst s + (p - first pair of e).
    run = gid_run[shared]
    boundary = np.empty(run.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = run[1:] != run[:-1]
    run_of_elem = np.cumsum(boundary) - 1
    lengths = np.bincount(run_of_elem)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    h_of_elem = lengths[run_of_elem]
    pair_elem = np.repeat(np.arange(ranks.size), h_of_elem)
    pair_start = np.concatenate(([0], np.cumsum(h_of_elem)[:-1]))
    local_j = np.arange(pair_elem.size) - pair_start[pair_elem]
    dst_idx = starts[run_of_elem[pair_elem]] + local_j
    keep = pair_elem != dst_idx
    key = np.unique(ranks[pair_elem[keep]] * np.int64(nranks) + ranks[dst_idx[keep]])
    src_of_key = key // nranks
    dst_of_key = key % nranks
    split_at = np.searchsorted(src_of_key, np.arange(1, nranks))
    return list(np.split(dst_of_key, split_at))
