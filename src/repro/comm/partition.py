"""Element partitioning for the simulated ranks.

Two strategies, both deterministic:

* linear -- elements in mesh order, contiguous chunks (what Neko does by
  default after mesh generation, relying on generator locality);
* recursive coordinate bisection (RCB) of element centroids -- a classic
  geometric partitioner producing compact subdomains and a good stand-in
  for the graph partitioning production meshes receive offline.

``partition_quality`` reports balance and the shared-node halo sizes that
drive the gather--scatter communication volume in the performance model.
"""

from __future__ import annotations

import numpy as np

from repro.sem.mesh import HexMesh

__all__ = ["linear_partition", "rcb_partition", "partition_quality"]


def linear_partition(nelv: int, nranks: int) -> np.ndarray:
    """Contiguous chunks of (as equal as possible) size; returns rank per element."""
    if nranks < 1 or nelv < 1:
        raise ValueError("need nelv >= 1 and nranks >= 1")
    if nranks > nelv:
        raise ValueError(f"more ranks ({nranks}) than elements ({nelv})")
    counts = np.full(nranks, nelv // nranks)
    counts[: nelv % nranks] += 1
    return np.repeat(np.arange(nranks), counts)


def _centroids(mesh: HexMesh) -> np.ndarray:
    return mesh.corner_coords.reshape(mesh.nelv, 8, 3).mean(axis=1)


def rcb_partition(mesh: HexMesh, nranks: int) -> np.ndarray:
    """Recursive coordinate bisection of element centroids.

    At each level the current element set splits along its longest
    coordinate extent at the median, with part sizes proportional to the
    number of ranks assigned to each side (handles non-power-of-two
    counts).
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if nranks > mesh.nelv:
        raise ValueError(f"more ranks ({nranks}) than elements ({mesh.nelv})")
    cent = _centroids(mesh)
    owner = np.zeros(mesh.nelv, dtype=np.int64)

    def split(idx: np.ndarray, ranks: range) -> None:
        if len(ranks) == 1:
            owner[idx] = ranks.start
            return
        spans = cent[idx].max(axis=0) - cent[idx].min(axis=0)
        axis = int(np.argmax(spans))
        order = idx[np.argsort(cent[idx, axis], kind="stable")]
        n_left_ranks = len(ranks) // 2
        n_left = int(round(len(order) * n_left_ranks / len(ranks)))
        n_left = min(max(n_left, n_left_ranks), len(order) - (len(ranks) - n_left_ranks))
        split(order[:n_left], range(ranks.start, ranks.start + n_left_ranks))
        split(order[n_left:], range(ranks.start + n_left_ranks, ranks.stop))

    split(np.arange(mesh.nelv), range(nranks))
    return owner


def partition_quality(
    owner: np.ndarray, global_ids: np.ndarray, nelv: int, points_per_element: int
) -> dict[str, float]:
    """Balance and halo metrics of a partition.

    ``global_ids`` is the flat node numbering of the space (length
    ``nelv * points_per_element``).  A *shared* node is one whose copies
    live on more than one rank; the per-rank shared count is the message
    volume of the gather--scatter's network phase.
    """
    nranks = int(owner.max()) + 1
    counts = np.bincount(owner, minlength=nranks)
    ids = global_ids.reshape(nelv, points_per_element)
    # rank of each node copy.
    node_rank = np.repeat(owner, points_per_element)
    flat = global_ids.reshape(-1)
    # For each unique id: how many distinct ranks hold a copy?
    order = np.argsort(flat, kind="stable")
    sorted_ids = flat[order]
    sorted_rank = node_rank[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    groups_ids = np.split(sorted_rank, boundaries)
    shared_per_rank = np.zeros(nranks)
    n_shared_global = 0
    for g in groups_ids:
        ranks = np.unique(g)
        if len(ranks) > 1:
            n_shared_global += 1
            shared_per_rank[ranks] += 1
    del ids
    return {
        "n_ranks": float(nranks),
        "imbalance": float(counts.max() / counts.mean()),
        "shared_nodes_global": float(n_shared_global),
        "max_shared_per_rank": float(shared_per_rank.max()),
        "avg_shared_per_rank": float(shared_per_rank.mean()),
    }
