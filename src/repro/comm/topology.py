"""Topology-aware two-phase gather--scatter over rank-batched state.

This is the paper's scaling-critical communication pattern, rebuilt for
the batched world: at 16,384 GCDs the flat gather--scatter sends one
message per (holder, owner) rank pair, and the inter-node message count
is what kills strong scaling (cf. the Nek5000 strong-scaling studies,
arXiv:1706.02970 / arXiv:2109.03592).  The topology-aware variant keeps
node-local partials on the fast intra-node links and *stages* the
inter-node traffic through node-leader ranks -- each node sends one
aggregated message per destination node instead of every rank messaging
every remote owner.

**Bit-identity by construction.**  Staging only changes *who carries*
the (gid, partial) entries, never the arithmetic: leaders concatenate
entries, and the final reduction -- one ``np.bincount`` over partials
sorted by (gid, holder rank) -- is the same code path for the ``"flat"``
and ``"topology"`` algorithms.  The two algorithms therefore return
byte-identical fields and differ only in their logged traffic, which is
exactly the contract the equivalence property suite pins down to 0 ulp.

The per-(gid, rank) partial sums are sequential ``bincount``
accumulations in original copy order (over a stable lexsort), matching
the rank-local ``bincount`` of the legacy
:class:`~repro.comm.distributed_gs.DistributedGatherScatter`, and the
owner reduction adds holder partials in ascending rank order exactly as
the legacy owner loop does -- so the batched result is bit-identical to
the legacy per-rank object path, not merely ``allclose``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.costmodel import CommRound

__all__ = ["NodeTopology", "BatchedGatherScatter"]

#: Wire size of one staged (gid, partial) entry: int64 id + float64 value.
ENTRY_BYTES = 16


@dataclass(frozen=True)
class NodeTopology:
    """Dense rank-to-node packing: ranks ``[k*rpn, (k+1)*rpn)`` share node ``k``."""

    n_ranks: int
    ranks_per_node: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1 or self.ranks_per_node < 1:
            raise ValueError("need n_ranks >= 1 and ranks_per_node >= 1")

    @classmethod
    def for_machine(cls, machine, n_ranks: int) -> "NodeTopology":
        """Pack ``n_ranks`` with the machine's GPUs-per-node density."""
        return cls(n_ranks, machine.gpus_per_node)

    @property
    def n_nodes(self) -> int:
        return -(-self.n_ranks // self.ranks_per_node)

    def node_of(self, ranks: np.ndarray) -> np.ndarray:
        return np.asarray(ranks) // self.ranks_per_node

    def leader_of(self, ranks: np.ndarray) -> np.ndarray:
        """The lowest rank of each rank's node (the staging aggregator)."""
        return self.node_of(ranks) * self.ranks_per_node


def _group_edges(
    src: np.ndarray, dst: np.ndarray, n_ranks: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Aggregate per-entry edges into per-(src, dst) messages.

    Returns ``(src, dst, nbytes)`` arrays with one row per distinct edge;
    each message carries all of that edge's 16-byte (gid, value) entries.
    """
    if src.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    key = src.astype(np.int64) * n_ranks + dst
    uniq, counts = np.unique(key, return_counts=True)
    return uniq // n_ranks, uniq % n_ranks, counts * ENTRY_BYTES


class BatchedGatherScatter:
    """Distributed dssum computed as batched index operations.

    Per-rank fields live stacked in one elementwise array (the
    "rank-batched state"): element ``e`` belongs to ``owner[e]``, and a
    rank's chunk is the sub-array of its elements.  Setup is a single
    stable lexsort of all node copies by (gid, holder rank); every
    ``add`` is two ``bincount`` passes plus one gather -- O(copies), with
    no per-rank Python objects, which is what lets a campaign run
    O(10^3..10^4) simulated ranks in seconds.

    Parameters
    ----------
    global_ids:
        Flat node numbering of the whole space (``nelv * pts`` entries).
    owner:
        Rank per element.
    shape:
        Elementwise field shape ``(nelv, ...)``.
    world:
        A :class:`~repro.comm.batched.BatchedWorld`; exchange rounds are
        replayed into its traffic stats and comm log.
    topology:
        Node packing for the ``"topology"`` algorithm (optional when
        only ``"flat"`` is used).
    """

    def __init__(
        self,
        global_ids: np.ndarray,
        owner: np.ndarray,
        shape: tuple[int, ...],
        world,
        topology: NodeTopology | None = None,
    ) -> None:
        self.world = world
        self.topology = topology
        self.shape = tuple(shape)
        nelv = self.shape[0]
        pts = int(np.prod(self.shape[1:]))
        self.owner = np.asarray(owner, dtype=np.int64)
        if len(self.owner) != nelv:
            raise ValueError("owner must have one entry per element")
        if int(self.owner.max()) + 1 > world.size:
            raise ValueError("partition uses more ranks than the world has")
        if not hasattr(world, "exchange_batched"):
            raise TypeError(
                "BatchedGatherScatter needs a BatchedWorld (exchange_batched); "
                "use DistributedGatherScatter for per-rank object worlds"
            )
        if getattr(world, "fault_injector", None) is not None:
            raise ValueError(
                "the batched gather-scatter replays count-only exchange rounds "
                "and cannot exercise a fault injector; faulted runs use the "
                "per-rank DistributedGatherScatter adapter path"
            )

        ids = np.asarray(global_ids, dtype=np.int64).reshape(-1)
        if ids.size != nelv * pts:
            raise ValueError("global_ids must cover every point of every element")
        copy_rank = np.repeat(self.owner, pts)

        # One stable sort of every node copy by (gid, holder rank): runs of
        # equal (gid, rank) are the per-rank partial-sum slots, runs of equal
        # gid are the holder groups.  Stability keeps copies of one slot in
        # original (element, point) order -- the order the legacy per-rank
        # bincount accumulates in, hence the bit-identity with that path.
        order = np.lexsort((copy_rank, ids))
        gid_sorted = ids[order]
        rank_sorted = copy_rank[order]
        new_slot = np.empty(ids.size, dtype=bool)
        new_slot[0] = True
        new_slot[1:] = (gid_sorted[1:] != gid_sorted[:-1]) | (
            rank_sorted[1:] != rank_sorted[:-1]
        )
        self._order = order
        self._slot_starts = np.flatnonzero(new_slot)
        self._slot_of_sorted = np.cumsum(new_slot) - 1
        self._slot_of_copy = np.empty(ids.size, dtype=np.int64)
        self._slot_of_copy[order] = self._slot_of_sorted
        self.slot_rank = rank_sorted[self._slot_starts]
        slot_gid = gid_sorted[self._slot_starts]

        new_group = np.empty(slot_gid.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = slot_gid[1:] != slot_gid[:-1]
        self._group_starts = np.flatnonzero(new_group)
        self._group_of_slot = np.cumsum(new_group) - 1
        holders_per_group = np.bincount(self._group_of_slot)
        # Lowest holder rank owns -- first slot of each (gid-sorted) group.
        owner_rank_of_group = self.slot_rank[self._group_starts]
        self.owner_of_slot = owner_rank_of_group[self._group_of_slot]
        self.shared_slot = (holders_per_group > 1)[self._group_of_slot]
        self.n_shared = int(np.count_nonzero(holders_per_group > 1))
        self.n_global = int(holders_per_group.size)

        self._rounds_flat = self._build_flat_rounds()
        self._rounds_topology = (
            self._build_topology_rounds() if topology is not None else None
        )

    # -- traffic patterns (precomputed; replayed per add) -----------------------

    def _shared_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """(holder, owner) per shared non-owner slot -- one staged entry each."""
        moving = self.shared_slot & (self.slot_rank != self.owner_of_slot)
        return self.slot_rank[moving], self.owner_of_slot[moving]

    def _build_flat_rounds(self) -> list[CommRound]:
        """Every holder messages every remote owner directly, owners reply."""
        src, dst = self._shared_edges()
        msrc, mdst, mbytes = _group_edges(src, dst, self.world.size)
        return [
            CommRound("gs.request", msrc, mdst, mbytes),
            CommRound("gs.reply", mdst, msrc, mbytes),
        ]

    def _build_topology_rounds(self) -> list[CommRound]:
        """Intra-node direct exchange + staged inter-node aggregation.

        Entries whose owner shares the holder's node go rank-to-rank on
        the node-local links.  Remote entries climb to the holder's node
        leader (intra), travel leader-to-leader in one aggregated message
        per destination node (inter), and descend from the owner's leader
        (intra).  Replies mirror the three stages in reverse.  Payload is
        conserved -- leaders concatenate entries, they never pre-reduce,
        which is what keeps the arithmetic identical to the flat path.
        """
        topo = self.topology
        n = self.world.size
        src, dst = self._shared_edges()
        same_node = topo.node_of(src) == topo.node_of(dst)
        d_src, d_dst = src[same_node], dst[same_node]
        r_src, r_dst = src[~same_node], dst[~same_node]
        lead_src = topo.leader_of(r_src)
        lead_dst = topo.leader_of(r_dst)
        up = r_src != lead_src
        down = r_dst != lead_dst

        stages = [
            ("topo.intra", *_group_edges(d_src, d_dst, n)),
            ("topo.stage_up", *_group_edges(r_src[up], lead_src[up], n)),
            ("topo.stage_inter", *_group_edges(lead_src, lead_dst, n)),
            ("topo.stage_down", *_group_edges(lead_dst[down], r_dst[down], n)),
        ]
        rounds = [CommRound(phase, s, d, b) for phase, s, d, b in stages]
        rounds += [
            CommRound(phase.replace("topo.", "topo.reply_"), d, s, b)
            for phase, s, d, b in reversed(stages)
        ]
        return rounds

    def rounds(self, algorithm: str = "topology") -> list[CommRound]:
        """The precomputed exchange rounds one ``add`` replays."""
        if algorithm == "flat":
            return self._rounds_flat
        if algorithm == "topology":
            if self._rounds_topology is None:
                raise ValueError("no NodeTopology attached; use algorithm='flat'")
            return self._rounds_topology
        raise ValueError(f"unknown gather-scatter algorithm {algorithm!r}")

    def traffic_summary(self, algorithm: str = "topology") -> dict[str, int]:
        """Messages/bytes per add, split intra/inter when a topology exists."""
        rounds = self.rounds(algorithm)
        out = {
            "messages": sum(r.n_messages for r in rounds),
            "bytes": sum(r.total_bytes for r in rounds),
        }
        if self.topology is not None:
            intra_m = intra_b = inter_m = inter_b = 0
            for r in rounds:
                split = r.split_by_locality(self.topology)
                intra_m += split["intra"][0]
                intra_b += split["intra"][1]
                inter_m += split["inter"][0]
                inter_b += split["inter"][1]
            out.update(
                intra_messages=intra_m,
                intra_bytes=intra_b,
                inter_messages=inter_m,
                inter_bytes=inter_b,
            )
        return out

    # -- the operation ----------------------------------------------------------

    def add(self, u: np.ndarray, algorithm: str = "topology") -> np.ndarray:
        """Dssum of a full stacked field; returns a new field.

        The arithmetic is algorithm-independent (see the module docstring);
        ``algorithm`` selects which traffic pattern is replayed into the
        world's stats and comm log.
        """
        rounds = self.rounds(algorithm)
        if u.shape != self.shape:
            raise ValueError(f"field shape {u.shape} != {self.shape}")
        # Both reductions use bincount, not reduceat: bincount accumulates
        # strictly sequentially in input order (reduceat's slice reduction
        # may reassociate), which is the exact summation order of the
        # legacy path -- per-rank bincount partials, then the owner adding
        # holder partials in ascending rank order starting from 0.0.
        # Phase 1: per-(gid, rank) partials in original copy order.
        partial = np.bincount(
            self._slot_of_sorted, weights=u.reshape(-1)[self._order]
        )
        # Phase 2: owner reduction over holders in ascending rank order.
        totals = np.bincount(self._group_of_slot, weights=partial)
        out = totals[self._group_of_slot][self._slot_of_copy].reshape(u.shape)
        for round_ in rounds:
            self.world.exchange_batched(
                round_.src, round_.dst, round_.nbytes, phase=round_.phase
            )
        return out

    # -- analytics helpers ------------------------------------------------------

    def rank_element_counts(self) -> np.ndarray:
        """Elements per rank (the compute-side imbalance input)."""
        return np.bincount(self.owner, minlength=self.world.size)

    def rank_shared_entries(self) -> np.ndarray:
        """Staged halo entries each rank sends per add (its GS send load)."""
        src, _dst = self._shared_edges()
        return np.bincount(src, minlength=self.world.size)
