"""BatchedWorld: the rank world as stacked arrays instead of objects.

:class:`~repro.comm.simworld.SimWorld` keeps the buffer-level MPI
semantics tests rely on, but its per-message Python accounting tops out
around ``world4_dist_cg``'s 4 ranks.  :class:`BatchedWorld` is the same
world refactored for scale: per-rank state lives in stacked arrays, a
whole exchange round is one vectorized accounting pass
(:meth:`exchange_batched` / :meth:`TrafficStats.record_p2p_batch`), and
every round is appended to a :class:`~repro.comm.costmodel.CommRound`
log the DES cost model prices afterwards.  That is what lets the Fig. 3
campaign sweep O(10^3..10^4) simulated ranks in seconds.

**The per-rank API survives via thin adapters.**  ``BatchedWorld`` *is a*
``SimWorld``: the dict-based :meth:`exchange`, :meth:`gather`,
:meth:`barrier` and the allreduces all still work, fleet telemetry
attaches the same way, and the moment a fault injector or a retry policy
is armed the exchange falls back to the inherited per-message path --
bit-for-bit the legacy channel, because fault outcomes depend on the
injector's per-message RNG/counter sequence and only the original
delivery loop reproduces it.  The vectorized fast path is taken exactly
when it is provably indistinguishable (fault-free identity delivery),
which the equivalence property suite asserts against the legacy world.

``allreduce_scalar`` is intentionally *not* overridden: per-rank values
arrive as one float64 array and the inherited ``np.sum`` over that array
is already the batched reduction -- same pairwise summation, same bits.
"""

from __future__ import annotations

import numpy as np

from repro.comm.costmodel import CommRound
from repro.comm.simworld import SimWorld

__all__ = ["BatchedWorld"]


class BatchedWorld(SimWorld):
    """A :class:`SimWorld` whose hot paths are batched index operations."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Chronological log of batched exchange rounds, consumed by
        #: :class:`~repro.comm.costmodel.CommCostModel`.
        self.comm_log: list[CommRound] = []

    # -- batched primitives -----------------------------------------------------

    def exchange_batched(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray,
        phase: str = "gs.exchange",
    ) -> CommRound:
        """Account one exchange round given per-message edge arrays.

        The round's payloads are computed analytically by the caller (the
        batched gather--scatter assembles results with ``reduceat``, not
        by moving buffers), so this is traffic accounting plus cost-model
        logging: validation, :meth:`TrafficStats.record_p2p_batch`, one
        :class:`CommRound` appended to :attr:`comm_log`.

        Count-only rounds cannot pass through the fault injector or the
        reliable channel (there is no per-message buffer to drop or
        checksum), so a hardened/faulted world refuses them -- faulted
        traffic must use the per-rank :meth:`exchange` adapter.
        """
        if self.fault_injector is not None or self.retry is not None:
            raise RuntimeError(
                "exchange_batched bypasses the fault/reliable channel; "
                "faulted or hardened worlds must use exchange()"
            )
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        if not (src.shape == dst.shape == nbytes.shape):
            raise ValueError("src, dst and nbytes must be parallel arrays")
        if src.size and not (
            (src >= 0).all()
            and (src < self.size).all()
            and (dst >= 0).all()
            and (dst < self.size).all()
        ):
            raise ValueError("invalid ranks in batched exchange round")
        # Self-messages are rank-local copies: free on the wire and uncounted,
        # matching the per-message exchange() accounting.
        wire = src != dst
        if not wire.all():
            src, dst, nbytes = src[wire], dst[wire], nbytes[wire]
        self.stats.record_p2p_batch(src, dst, nbytes)
        round_ = CommRound(phase, src, dst, nbytes)
        self.comm_log.append(round_)
        return round_

    # -- per-rank adapter -------------------------------------------------------

    def exchange(
        self, sends: dict[tuple[int, int], np.ndarray]
    ) -> dict[tuple[int, int], np.ndarray]:
        """Dict-based exchange with vectorized accounting when fault-free.

        With a fault injector or retry policy attached this defers to the
        inherited per-message loop, whose delivery order drives the
        injector's RNG/counter stream -- the fallback is what keeps
        injected-fault outcomes bit-identical to the legacy world.  The
        fault-free path batches the accounting and logs a comm round.
        """
        if self.fault_injector is not None or self.retry is not None:
            return super().exchange(sends)
        n_msg = len(sends)
        src = np.empty(n_msg, dtype=np.int64)
        dst = np.empty(n_msg, dtype=np.int64)
        nbytes = np.empty(n_msg, dtype=np.int64)
        for i, ((s, d), buf) in enumerate(sends.items()):
            src[i] = s
            dst[i] = d
            nbytes[i] = buf.nbytes
        self.exchange_batched(src, dst, nbytes, phase="gs.exchange")
        return {key: np.array(buf, copy=True) for key, buf in sends.items()}
