"""Reliable-delivery policy for the simulated network.

The paper's campaign runs for weeks across thousands of GPUs; at that
scale the network is not a reliable channel but a lossy one, and every
production MPI stack layers acknowledgement/retransmission underneath the
collectives.  This module is the simulated equivalent for
:class:`~repro.comm.simworld.SimWorld`:

* every point-to-point buffer travels in an **envelope** carrying a
  per-edge **sequence number** and a CRC32 **payload checksum**, so the
  receiver can tell a genuine delivery from a dropped (zeroed), corrupted
  (bit-flipped) or stale (delayed) one;
* failed deliveries are **retransmitted** under a :class:`RetryPolicy`
  with exponential, seeded-jitter backoff, up to a bounded attempt
  budget -- exhaustion raises :class:`CommTimeoutError` instead of
  hanging, the property the chaos campaign asserts;
* retried deliveries are **idempotent for the traffic statistics**: the
  sequence number dedupes them, so ``TrafficStats.p2p_messages`` counts
  logical messages once while ``retransmissions`` counts the extra wire
  traffic separately;
* collective results can be **integrity-checked** by replication: the
  reduction is computed twice and the replicas' checksums compared, which
  catches silent data corruption (SDC) planted in a collective result and
  escalates to :class:`CollectiveIntegrityError` after bounded retries --
  the rollback trigger.

Backoff sleeping goes through an injectable ``sleep`` callable (the
default policy never sleeps), and the jitter draws from a seeded
generator, so hardened runs stay bit-for-bit reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "CommTimeoutError",
    "CollectiveIntegrityError",
    "RetryPolicy",
    "Envelope",
    "payload_checksum",
]


class CommTimeoutError(RuntimeError):
    """A message could not be delivered within the retry budget."""

    def __init__(self, src: int, dst: int, attempts: int, detail: str = "") -> None:
        self.src = src
        self.dst = dst
        self.attempts = attempts
        msg = f"message {src}->{dst} undeliverable after {attempts} attempts"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class CollectiveIntegrityError(RuntimeError):
    """Replicated collective results disagreed beyond the retry budget.

    Signals silent data corruption inside a reduction; the caller (the
    resilient runner or the recovery policy) must roll back to the last
    consistent epoch rather than trust either replica.
    """

    def __init__(self, op: str, attempts: int) -> None:
        self.op = op
        self.attempts = attempts
        super().__init__(
            f"collective {op!r} failed replicated integrity check {attempts} times"
        )


def payload_checksum(buf: np.ndarray) -> int:
    """CRC32 over the raw payload bytes (dtype- and shape-blind by design).

    The checksum guards the wire representation: a dropped message
    (delivered as zeros), a flipped bit or a stale buffer all change the
    byte stream and therefore the CRC, which is all the receiver needs.
    """
    return zlib.crc32(np.ascontiguousarray(buf).tobytes())


@dataclass(frozen=True)
class Envelope:
    """Delivery metadata accompanying one point-to-point buffer."""

    src: int
    dst: int
    seq: int
    checksum: int

    def matches(self, buf: np.ndarray) -> bool:
        return payload_checksum(buf) == self.checksum


@dataclass
class RetryPolicy:
    """Bounded retransmission with exponential, seeded-jitter backoff.

    Parameters
    ----------
    max_retries:
        Retransmissions allowed per message (so up to ``max_retries + 1``
        delivery attempts) and re-runs allowed per integrity-checked
        collective.
    backoff, backoff_base:
        Attempt ``n`` (1-based) waits ``backoff * backoff_base**(n-1)``
        seconds before retrying; the default ``backoff=0`` never sleeps.
    jitter:
        Fractional jitter applied to each delay (``0.25`` means up to
        +-25 %), drawn from the seeded generator so delays are
        reproducible.
    seed:
        Seeds the jitter generator.
    sleep:
        Injectable sleep callable; tests pass a recorder.  Only invoked
        for strictly positive delays.
    """

    max_retries: int = 3
    backoff: float = 0.0
    backoff_base: float = 2.0
    jitter: float = 0.0
    seed: int = 0
    sleep: Callable[[float], None] = field(default=lambda _s: None, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.backoff < 0.0:
            raise ValueError("backoff must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered."""
        base = self.backoff * self.backoff_base ** (attempt - 1)
        if base <= 0.0:
            return 0.0
        if self.jitter > 0.0:
            base *= 1.0 + self.jitter * float(self._rng.uniform(-1.0, 1.0))
        return base

    def wait(self, attempt: int) -> float:
        """Sleep for :meth:`delay` via the injectable callable; returns it."""
        d = self.delay(attempt)
        if d > 0.0:
            self.sleep(d)
        return d
