"""Simulated-exascale strong-scaling campaign (the executable Fig. 3).

The paper's Fig. 3 plots average time per step against GPU count on LUMI
and Leonardo.  This module reproduces that experiment *in simulation*: a
synthetic structured spectral-element mesh is partitioned over
O(10^2..10^4) simulated ranks of a :class:`~repro.comm.batched.BatchedWorld`,
the topology-aware :class:`~repro.comm.topology.BatchedGatherScatter`
replays its staged exchange rounds, and the
:class:`~repro.comm.costmodel.CommCostModel` prices the logged traffic on
the machine's interconnect (Table 1 parameters).  The "measured" curve is
the discrete-event time of the simulated execution -- per-rank compute
from the :class:`~repro.perfmodel.workmodel.SEMWorkModel` work counts at
each rank's *actual* element load, plus the DES cost of every exchange
and allreduce a step performs; the "modeled" curve is the closed-form
:class:`~repro.perfmodel.scaling.StrongScalingStudy` prediction at the
same elements-per-rank.  Where the two diverge, the divergence is
interesting: the DES sees the partition's real imbalance and message
structure, the closed form assumes symmetric ranks.

Everything here is deterministic -- traffic depends only on the integer
mesh/partition structure, never on field values or a wall clock -- so the
campaign's efficiency numbers are golden-file stable across platforms
(``BENCH_scaling.json``).

Run the campaign from the repository root::

    PYTHONPATH=src python -m repro.comm.campaign --out bench_out \
        --ranks 16,64,256,1024
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.comm.batched import BatchedWorld
from repro.comm.costmodel import CommCostModel
from repro.comm.partition import rcb_from_centroids
from repro.comm.topology import BatchedGatherScatter, NodeTopology
from repro.perfmodel.machine import LEONARDO, LUMI, MachineSpec
from repro.perfmodel.scaling import StrongScalingStudy
from repro.perfmodel.workmodel import SEMWorkModel

__all__ = [
    "structured_global_ids",
    "CampaignPoint",
    "ScalingCampaign",
    "fig3_scaling_report",
    "bench_record",
    "run_fig3_campaign",
    "main",
]

SCHEMA_VERSION = 1

#: Default element grid: 4096 elements, enough for 4096 simulated ranks.
DEFAULT_SHAPE = (16, 16, 16)
DEFAULT_RANKS = (16, 64, 256, 1024)

MACHINES = {"lumi": LUMI, "leonardo": LEONARDO}


def structured_global_ids(
    shape: tuple[int, int, int], lx: int
) -> tuple[np.ndarray, np.ndarray]:
    """Global node ids and element centroids of a structured hex box.

    Builds the conforming node numbering of an ``ex x ey x ez`` element
    grid at polynomial order ``lx - 1`` directly -- shared faces get shared
    ids, exactly the id structure a
    :class:`~repro.sem.space.FunctionSpace` produces, but without
    materializing coordinates or operators, which is what keeps a
    4096-element campaign mesh cheap enough to re-partition per rank
    count.  Returns ``(flat ids of length nelv * lx**3, centroids)``.
    """
    ex, ey, ez = shape
    if min(shape) < 1 or lx < 2:
        raise ValueError("need a positive element grid and lx >= 2")
    ny = ey * (lx - 1) + 1
    nz = ez * (lx - 1) + 1
    # Per-axis node index of (element-along-axis, local point): e*(lx-1)+a.
    gx = np.arange(ex)[:, None] * (lx - 1) + np.arange(lx)[None, :]
    gy = np.arange(ey)[:, None] * (lx - 1) + np.arange(lx)[None, :]
    gz = np.arange(ez)[:, None] * (lx - 1) + np.arange(lx)[None, :]
    ids = (
        gx[:, None, None, :, None, None] * (ny * nz)
        + gy[None, :, None, None, :, None] * nz
        + gz[None, None, :, None, None, :]
    )
    cent = np.stack(
        np.meshgrid(
            np.arange(ex, dtype=np.float64) + 0.5,
            np.arange(ey, dtype=np.float64) + 0.5,
            np.arange(ez, dtype=np.float64) + 0.5,
            indexing="ij",
        ),
        axis=-1,
    ).reshape(-1, 3)
    return ids.reshape(-1).astype(np.int64), cent


@dataclass
class CampaignPoint:
    """One measured-vs-modeled point of the simulated strong-scaling curve."""

    machine: str
    n_ranks: int
    n_nodes: int
    elements_per_rank: float
    compute_us: float          # busiest rank's per-step device work
    gs_us_topology: float      # DES cost of one topology-staged dssum
    gs_us_flat: float          # counterfactual: one flat dssum
    allreduce_us: float        # one small blocking allreduce
    step_us: float             # measured (DES) step, topology gather-scatter
    step_us_flat: float        # measured step with the flat gather-scatter
    modeled_step_us: float     # closed-form StrongScalingStudy prediction
    traffic: dict = field(default_factory=dict)
    efficiency: float = 1.0
    efficiency_flat: float = 1.0
    modeled_efficiency: float = 1.0

    @property
    def gs_topology_speedup(self) -> float:
        """Flat-vs-staged exchange time ratio (> 1 means staging wins)."""
        return self.gs_us_flat / self.gs_us_topology if self.gs_us_topology else 1.0


class ScalingCampaign:
    """Strong-scaling sweep of the batched comm engine on one machine.

    Parameters
    ----------
    machine:
        Table 1 platform (interconnect and device parameters).
    shape, lx:
        The synthetic campaign mesh: element grid and points per element
        edge.  The default 16^3 grid at lx=8 has 4096 elements / 2.1M
        node copies -- a miniature of the paper's 108M-element production
        mesh with the same surface-to-volume scaling behavior.
    work:
        Per-step work counts; defaults to the production iteration regime
        (pressure-dominated, Fig. 4).
    """

    def __init__(
        self,
        machine: MachineSpec,
        shape: tuple[int, int, int] = DEFAULT_SHAPE,
        lx: int = 8,
        work: SEMWorkModel | None = None,
    ) -> None:
        self.machine = machine
        self.shape = tuple(shape)
        self.lx = lx
        self.work = work if work is not None else SEMWorkModel(lx=lx)
        self.global_ids, self.centroids = structured_global_ids(self.shape, lx)
        self.nelv = int(np.prod(self.shape))
        self.field_shape = (self.nelv, lx, lx, lx)
        self.study = StrongScalingStudy(machine, n_elements=self.nelv, work=self.work)

    # -- per-step operation counts (mirrors SEMWorkModel.step_costs) ------------

    def gs_per_step(self) -> float:
        """Gather-scatter applications per step, from the work counts."""
        w = self.work
        return (
            w.pressure_iterations * 2          # ax + smoother
            + w.pressure_iterations * 0.1      # coarse-level vertex halos
            + 3 * w.velocity_iterations
            + w.temperature_iterations
            + 4                                # advection/dealiasing
        )

    def allreduces_per_step(self) -> float:
        """Blocking allreduces per step, from the work counts."""
        w = self.work
        main, coarse = w.pressure_allreduces()
        return main + coarse + 3 * w.velocity_iterations * 2 + w.temperature_iterations * 2

    # -- one scaling point ------------------------------------------------------

    def build_point(
        self, n_ranks: int
    ) -> tuple[BatchedWorld, BatchedGatherScatter, CommCostModel]:
        """Partition the mesh over ``n_ranks`` and wire the batched engine."""
        owner = rcb_from_centroids(self.centroids, n_ranks)
        world = BatchedWorld(n_ranks)
        topology = NodeTopology.for_machine(self.machine, n_ranks)
        gs = BatchedGatherScatter(
            self.global_ids, owner, self.field_shape, world, topology=topology
        )
        cost = CommCostModel(self.machine, topology=topology)
        return world, gs, cost

    def _rank_compute_us(self, gs: BatchedGatherScatter, n_ranks: int) -> np.ndarray:
        """Per-rank device time (compute/launch legs) at actual element loads."""
        counts = gs.rank_element_counts()
        out = np.zeros(n_ranks)
        for ne in np.unique(counts):
            if ne == 0:
                continue
            costs = self.work.step_costs(
                float(ne), self.machine.device, self.study_net(), n_ranks
            )
            t = sum(
                max(costs[k].compute_us, costs[k].launch_us)
                for k in ("pressure", "velocity", "temperature", "advection")
            )
            out[counts == ne] = t
        return out

    def study_net(self):
        from repro.perfmodel.network import NetworkModel

        return NetworkModel(self.machine)

    def run_point(self, n_ranks: int) -> CampaignPoint:
        """Run one rank count: one dssum per algorithm, DES-price the step."""
        world, gs, cost = self.build_point(n_ranks)
        gs_topo = sum(cost.round_us(r, n_ranks) for r in gs.rounds("topology"))
        gs_flat = sum(cost.round_us(r, n_ranks) for r in gs.rounds("flat"))
        red = cost.allreduce_us(n_ranks)

        compute = self._rank_compute_us(gs, n_ranks)
        n_gs = self.gs_per_step()
        n_red = self.allreduces_per_step()
        step = float(compute.max()) + n_gs * gs_topo + n_red * red
        step_flat = float(compute.max()) + n_gs * gs_flat + n_red * red
        modeled = self.study.time_per_step(n_ranks) * 1e6

        return CampaignPoint(
            machine=self.machine.name,
            n_ranks=n_ranks,
            n_nodes=NodeTopology.for_machine(self.machine, n_ranks).n_nodes,
            elements_per_rank=self.nelv / n_ranks,
            compute_us=float(compute.max()),
            gs_us_topology=gs_topo,
            gs_us_flat=gs_flat,
            allreduce_us=red,
            step_us=step,
            step_us_flat=step_flat,
            modeled_step_us=modeled,
            traffic=gs.traffic_summary("topology"),
        )

    def sweep(self, rank_counts: tuple[int, ...] = DEFAULT_RANKS) -> list[CampaignPoint]:
        """The strong-scaling series, efficiencies relative to the smallest."""
        points = [self.run_point(n) for n in sorted(rank_counts)]
        if not points:
            return points
        base = points[0]
        for pt in points:
            pt.efficiency = (base.step_us * base.n_ranks) / (pt.step_us * pt.n_ranks)
            pt.efficiency_flat = (base.step_us_flat * base.n_ranks) / (
                pt.step_us_flat * pt.n_ranks
            )
            pt.modeled_efficiency = (base.modeled_step_us * base.n_ranks) / (
                pt.modeled_step_us * pt.n_ranks
            )
        return points

    # -- fleet analytics at one representative point ----------------------------

    def fleet_snapshot(self, n_ranks: int):
        """Per-rank DES telemetry of one step at one rank count.

        Replays the step's per-rank busy times into a
        :class:`~repro.observability.fleet.rank.FleetTelemetry` (with a
        frozen injected clock, so the artifact is deterministic) and
        returns ``(fleet, imbalance_report)`` -- the Fig. 4-style straggler
        view of the simulated campaign, plus a mergeable Chrome trace.
        """
        from repro.observability.fleet.rank import FleetTelemetry

        world, gs, cost = self.build_point(n_ranks)
        compute = self._rank_compute_us(gs, n_ranks)
        n_gs = self.gs_per_step()
        gs_busy = cost.rank_log_us(gs.rounds("topology"), n_ranks) * n_gs
        red_busy = self.allreduces_per_step() * cost.allreduce_us(n_ranks)
        fleet = FleetTelemetry(n_ranks, clock=lambda: 0.0)
        for r in range(n_ranks):
            rt = fleet[r]
            rt.record_span("topo.compute", compute[r] * 1e-6, cat="scaling")
            rt.record_span(
                "topo.gs",
                gs_busy[r] * 1e-6,
                counters={"shared_entries": float(gs.rank_shared_entries()[r])},
                cat="scaling",
            )
            rt.record_span("topo.allreduce", red_busy * 1e-6, cat="scaling")
        # One dssum replay fills the world's traffic stats for the gauges.
        gs.add(np.zeros(self.field_shape), algorithm="topology")
        fleet.publish_traffic(world)
        return fleet, fleet.imbalance()


def fig3_scaling_report(
    results: dict[str, list[CampaignPoint]],
    studies: dict[str, StrongScalingStudy] | None = None,
) -> str:
    """Text rendering of the measured-vs-modeled Fig. 3 curves.

    ``results`` maps machine keys to campaign sweeps; when ``studies`` is
    given, a closing section maps the curves to the paper's actual Fig. 3
    GPU counts via the closed-form model at production scale.
    """
    lines = ["fig3_scaling: simulated strong scaling, measured (DES) vs modeled", ""]
    for key, points in results.items():
        if not points:
            continue
        pt0 = points[0]
        lines.append(
            f"{pt0.machine}: {int(pt0.elements_per_rank * pt0.n_ranks)} elements, "
            f"topology-staged gather-scatter"
        )
        lines.append(
            f"  {'ranks':>6} {'nodes':>6} {'elem/rank':>10} "
            f"{'t/step meas':>12} {'t/step model':>13} {'eff meas':>9} "
            f"{'eff model':>10} {'gs topo x':>10}"
        )
        for pt in points:
            lines.append(
                f"  {pt.n_ranks:>6d} {pt.n_nodes:>6d} {pt.elements_per_rank:>10.1f} "
                f"{pt.step_us * 1e-6:>10.4f} s {pt.modeled_step_us * 1e-6:>11.4f} s "
                f"{pt.efficiency:>8.1%} {pt.modeled_efficiency:>9.1%} "
                f"{pt.gs_topology_speedup:>10.2f}"
            )
        last = points[-1]
        t = last.traffic
        if "inter_messages" in t:
            lines.append(
                f"  at {last.n_ranks} ranks: {t['messages']} msgs/dssum "
                f"({t['inter_messages']} inter-node, {t['intra_messages']} intra-node), "
                f"{t['bytes'] / 1e6:.2f} MB"
            )
        lines.append("")
    if studies:
        lines.append("paper-scale model (Fig. 3 GPU counts, 108M-element case):")
        for key, study in studies.items():
            for pt in study.paper_series():
                lines.append(
                    f"  {study.machine.name:<9s} {pt.n_gpus:>6d} GPUs  "
                    f"{pt.elements_per_gpu:>8.0f} elem/GPU  "
                    f"{pt.time_per_step_s:>8.4f} s/step  {pt.parallel_efficiency:>6.1%}"
                )
    return "\n".join(lines)


def bench_record(
    results: dict[str, list[CampaignPoint]], environment: dict | None = None
) -> dict:
    """A ``BENCH_scaling.json`` payload from campaign sweeps.

    Entry names follow the ``world<N>_*`` convention so the campaign
    observatory's Fig. 3 scaling section picks them up from the ledger;
    ``seconds`` is the *simulated* (DES) step time -- deterministic, so
    :mod:`benchmarks.compare_bench` can gate on it with a tight threshold.
    """
    entries: dict[str, dict] = {}
    for key, points in results.items():
        for pt in points:
            entries[f"world{pt.n_ranks}_scaling_{key}"] = {
                "seconds": pt.step_us * 1e-6,
                "ranks": pt.n_ranks,
                "nodes": pt.n_nodes,
                "elements_per_rank": pt.elements_per_rank,
                "modeled_seconds": pt.modeled_step_us * 1e-6,
                "efficiency": pt.efficiency,
                "modeled_efficiency": pt.modeled_efficiency,
                "gs_topology_speedup": pt.gs_topology_speedup,
                "inter_messages": pt.traffic.get("inter_messages"),
                "intra_messages": pt.traffic.get("intra_messages"),
            }
    return {
        "schema": SCHEMA_VERSION,
        "tier": "scaling",
        "environment": environment or {},
        "results": entries,
    }


def run_fig3_campaign(
    rank_counts: tuple[int, ...] = DEFAULT_RANKS,
    shape: tuple[int, int, int] = DEFAULT_SHAPE,
    lx: int = 8,
    machines: dict[str, MachineSpec] | None = None,
) -> dict[str, list[CampaignPoint]]:
    """Sweep every machine; returns ``{machine_key: [CampaignPoint, ...]}``."""
    machines = machines if machines is not None else MACHINES
    return {
        key: ScalingCampaign(machine, shape=shape, lx=lx).sweep(rank_counts)
        for key, machine in machines.items()
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench_out", help="artifact directory")
    parser.add_argument(
        "--ranks", default=",".join(str(n) for n in DEFAULT_RANKS),
        help="comma-separated simulated rank counts",
    )
    parser.add_argument(
        "--shape", default="x".join(str(n) for n in DEFAULT_SHAPE),
        help="element grid, e.g. 16x16x16",
    )
    parser.add_argument("--lx", type=int, default=8, help="points per element edge")
    parser.add_argument(
        "--fleet-ranks", type=int, default=64,
        help="rank count for the per-rank fleet snapshot (0 disables)",
    )
    parser.add_argument(
        "--ledger", default=None, help="campaign ledger (JSONL) to append this run to"
    )
    args = parser.parse_args(argv)

    rank_counts = tuple(int(t) for t in args.ranks.split(","))
    shape = tuple(int(t) for t in args.shape.split("x"))
    if len(shape) != 3:
        raise SystemExit("--shape must be ExEyEz, e.g. 16x16x16")

    from benchmarks.perf_harness import environment

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    results = run_fig3_campaign(rank_counts, shape=shape, lx=args.lx)

    record = bench_record(results, environment=environment())
    bench_path = out_dir / "BENCH_scaling.json"
    bench_path.write_text(json.dumps(record, indent=2) + "\n")

    studies = {
        key: ScalingCampaign(m, shape=shape, lx=args.lx).study for key, m in MACHINES.items()
    }
    # Paper-scale model section uses the production element count.
    for study in studies.values():
        study.n_elements = 108_000_000
    report = fig3_scaling_report(results, studies=studies)
    report_path = out_dir / "fig3_scaling.txt"
    report_path.write_text(report + "\n")
    print(report)

    if args.fleet_ranks:
        campaign = ScalingCampaign(MACHINES["lumi"], shape=shape, lx=args.lx)
        fleet, imbalance = campaign.fleet_snapshot(args.fleet_ranks)
        (out_dir / "fig3_fleet_imbalance.txt").write_text(imbalance.render() + "\n")
        (out_dir / "fig3_fleet_trace.json").write_text(
            json.dumps(fleet.merge_traces()) + "\n"
        )
        print()
        print(imbalance.render())

    if args.ledger:
        from repro.observability.campaign import Ledger, RunRecord

        Ledger(Path(args.ledger)).append(RunRecord.from_bench(record))
        print(f"appended scaling run to {args.ledger}")

    print(f"wrote {bench_path} and {report_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
