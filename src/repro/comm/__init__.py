"""In-process MPI-rank simulation and domain decomposition.

The paper runs one MPI rank per logical GPU with a topology-aware
two-phase gather--scatter (local phase within the rank, shared phase over
the network).  This package reproduces that structure in one process:

* :class:`~repro.comm.simworld.SimWorld` -- a world of N simulated ranks
  with collective operations over per-rank data and full traffic
  accounting (message counts, bytes, reduction counts), which feeds the
  network side of the performance model;
* :mod:`repro.comm.partition` -- element partitioning (linear and
  recursive coordinate bisection) with halo-quality metrics;
* :class:`~repro.comm.distributed_gs.DistributedGatherScatter` -- the
  two-phase gather--scatter over a partition, verified against the
  single-rank operator.
"""

from repro.comm.reliable import (
    CollectiveIntegrityError,
    CommTimeoutError,
    RetryPolicy,
    payload_checksum,
)
from repro.comm.simworld import SimWorld, TrafficStats
from repro.comm.partition import linear_partition, rcb_partition, partition_quality
from repro.comm.distributed_gs import DistributedGatherScatter
from repro.comm.distributed_solver import DistributedConjugateGradient

__all__ = [
    "SimWorld",
    "TrafficStats",
    "RetryPolicy",
    "CommTimeoutError",
    "CollectiveIntegrityError",
    "payload_checksum",
    "linear_partition",
    "rcb_partition",
    "partition_quality",
    "DistributedGatherScatter",
    "DistributedConjugateGradient",
]
