"""In-process MPI-rank simulation and domain decomposition.

The paper runs one MPI rank per logical GPU with a topology-aware
two-phase gather--scatter (local phase within the rank, shared phase over
the network).  This package reproduces that structure in one process:

* :class:`~repro.comm.simworld.SimWorld` -- a world of N simulated ranks
  with collective operations over per-rank data and full traffic
  accounting (message counts, bytes, reduction counts), which feeds the
  network side of the performance model;
* :class:`~repro.comm.batched.BatchedWorld` -- the same world with
  per-rank state as stacked arrays and whole exchange rounds accounted as
  batched index operations, scaling campaigns to 10^3..10^4 simulated
  ranks;
* :mod:`repro.comm.partition` -- element partitioning (linear and
  recursive coordinate bisection) with halo-quality metrics and
  vectorized rank-neighbor discovery;
* :class:`~repro.comm.distributed_gs.DistributedGatherScatter` -- the
  two-phase gather--scatter over a partition, verified against the
  single-rank operator;
* :class:`~repro.comm.topology.BatchedGatherScatter` -- its rank-batched
  refactor plus the paper's topology-aware staged exchange
  (:class:`~repro.comm.topology.NodeTopology`), bit-identical to flat;
* :class:`~repro.comm.costmodel.CommCostModel` -- DES-style alpha-beta
  pricing of logged exchange rounds, the "measured" side of the Fig. 3
  scaling campaign (:mod:`repro.comm.campaign`).
"""

from repro.comm.reliable import (
    CollectiveIntegrityError,
    CommTimeoutError,
    RetryPolicy,
    payload_checksum,
)
from repro.comm.simworld import SimWorld, TrafficStats
from repro.comm.batched import BatchedWorld
from repro.comm.costmodel import CommCostModel, CommRound
from repro.comm.partition import (
    linear_partition,
    partition_quality,
    rank_neighbors,
    rcb_from_centroids,
    rcb_partition,
)
from repro.comm.distributed_gs import DistributedGatherScatter
from repro.comm.distributed_solver import DistributedConjugateGradient
from repro.comm.topology import BatchedGatherScatter, NodeTopology

__all__ = [
    "SimWorld",
    "TrafficStats",
    "BatchedWorld",
    "CommRound",
    "CommCostModel",
    "RetryPolicy",
    "CommTimeoutError",
    "CollectiveIntegrityError",
    "payload_checksum",
    "linear_partition",
    "rcb_partition",
    "rcb_from_centroids",
    "partition_quality",
    "rank_neighbors",
    "DistributedGatherScatter",
    "DistributedConjugateGradient",
    "BatchedGatherScatter",
    "NodeTopology",
]
