"""Two-phase distributed gather--scatter over a simulated partition.

The structure follows the paper's description: "the gather-scatter is ...
carried out in two phases, one for the local and one for the shared
elements between different MPI ranks".

Phase 1 (local): each rank reduces its own copies of every node it holds
(a rank-local ``bincount``).

Phase 2 (shared): nodes with copies on multiple ranks exchange their
partial sums point-to-point with the owner rank, which reduces in rank
order (deterministic!) and returns the result.  Traffic flows through a
:class:`~repro.comm.simworld.SimWorld`, so the message/byte counters can
be asserted on and fed to the performance model.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager

import numpy as np

from repro.comm.simworld import SimWorld

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.fleet.rank import FleetTelemetry

__all__ = ["DistributedGatherScatter"]


class DistributedGatherScatter:
    """Gather--scatter split across simulated ranks.

    Parameters
    ----------
    global_ids:
        Flat node numbering of the *whole* space (as built by the
        single-rank :class:`~repro.sem.gather_scatter.GatherScatter`).
    owner:
        Rank per element.
    shape:
        Elementwise shape ``(nelv, lx, lx, lx)`` of the full field.
    world:
        The rank world (supplies traffic accounting).
    """

    def __init__(
        self,
        global_ids: np.ndarray,
        owner: np.ndarray,
        shape: tuple[int, ...],
        world: SimWorld,
        fleet: "FleetTelemetry | None" = None,
    ) -> None:
        self.world = world
        # Per-rank telemetry; also settable via FleetTelemetry.attach(dgs).
        self.fleet = fleet
        self.shape = tuple(shape)
        nelv = self.shape[0]
        pts = int(np.prod(self.shape[1:]))
        self.owner = np.asarray(owner, dtype=np.int64)
        if len(self.owner) != nelv:
            raise ValueError("owner must have one entry per element")
        if int(self.owner.max()) + 1 > world.size:
            raise ValueError("partition uses more ranks than the world has")

        ids = np.asarray(global_ids, dtype=np.int64).reshape(nelv, pts)
        self.n_global = int(ids.max()) + 1

        # Per-rank element lists (one stable sort instead of an O(ranks *
        # nelv) scan of `owner == r` per rank) and local numbering.
        elem_order = np.argsort(self.owner, kind="stable")
        elem_counts = np.bincount(self.owner, minlength=world.size)
        self.rank_elements = np.split(elem_order, np.cumsum(elem_counts)[:-1])
        self.local_ids: list[np.ndarray] = []
        self.local_unique: list[np.ndarray] = []  # local slot -> global id
        for r in range(world.size):
            gid = ids[self.rank_elements[r]].reshape(-1)
            uniq, inv = np.unique(gid, return_inverse=True)
            self.local_unique.append(uniq)
            self.local_ids.append(inv)

        # Which global ids are shared between ranks, and who holds them.
        # local_unique[r] is already deduplicated and sorted per rank, so
        # concatenating the per-rank id lists and sorting by (gid, rank)
        # yields each id's holder list as one contiguous ascending run --
        # no per-id Python dict churn.
        pair_gid = np.concatenate(self.local_unique) if world.size else np.zeros(0, np.int64)
        pair_rank = np.repeat(
            np.arange(world.size, dtype=np.int64),
            [len(u) for u in self.local_unique],
        )
        order = np.lexsort((pair_rank, pair_gid))
        pair_gid, pair_rank = pair_gid[order], pair_rank[order]
        new_gid = np.empty(pair_gid.size, dtype=bool)
        if pair_gid.size:
            new_gid[0] = True
            new_gid[1:] = pair_gid[1:] != pair_gid[:-1]
        run_starts = np.flatnonzero(new_gid)
        run_lengths = np.diff(np.append(run_starts, pair_gid.size))
        shared_run = run_lengths > 1
        self.shared_ids = pair_gid[run_starts[shared_run]]
        # Lowest-rank holder owns; runs are rank-ascending, so that is the
        # run head.  The holder lists stay dicts for API compatibility.
        self.shared_owner = dict(
            zip(
                self.shared_ids.tolist(),
                pair_rank[run_starts[shared_run]].tolist(),
            )
        )
        holder_runs = np.split(pair_rank, run_starts[1:])
        self.shared_holders = {
            int(g): holder_runs[i].tolist()
            for g, i in zip(self.shared_ids, np.flatnonzero(shared_run))
        }

        # Per-rank index of its shared slots (positions into local_unique):
        # both sides are sorted-unique, so membership is a binary search.
        self.rank_shared_slots = [
            np.flatnonzero(np.isin(self.local_unique[r], self.shared_ids, assume_unique=True))
            for r in range(world.size)
        ]

        self.n_shared = len(self.shared_ids)

    # -- data layout helpers ---------------------------------------------------

    def scatter_field(self, u: np.ndarray) -> list[np.ndarray]:
        """Split a full elementwise field into per-rank chunks."""
        if u.shape != self.shape:
            raise ValueError(f"field shape {u.shape} != {self.shape}")
        return [u[self.rank_elements[r]].copy() for r in range(self.world.size)]

    def gather_field(self, chunks: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank chunks into a full elementwise field."""
        out = np.empty(self.shape)
        for r, chunk in enumerate(chunks):
            out[self.rank_elements[r]] = chunk
        return out

    def _rank_span(self, rank: int, name: str, **tags) -> "ContextManager":
        """A per-rank fleet span, or a no-op when no fleet is attached."""
        fleet = self.fleet
        if fleet is None:
            return nullcontext()
        return fleet[rank].span(name, **tags)

    # -- the operation -----------------------------------------------------------

    def add(self, chunks: list[np.ndarray], algorithm: str = "two_phase") -> list[np.ndarray]:
        """Distributed dssum; returns new per-rank chunks.

        ``algorithm`` selects the shared-phase communication pattern:

        * ``"two_phase"`` -- partial sums travel to the owner rank, which
          reduces and replies (two communication rounds, fewest messages);
        * ``"one_sided"`` -- every holder *puts* its partials directly into
          all other holders' windows and each reduces locally (one round,
          more messages) -- the Coarray-Fortran/SHMEM style gather-scatter
          the paper reports as under development.

        Both produce bit-identical results (reduction in rank order).
        """
        if algorithm == "one_sided":
            return self._add_one_sided(chunks)
        if algorithm != "two_phase":
            raise ValueError(f"unknown gather-scatter algorithm {algorithm!r}")
        world = self.world
        # Phase 1: rank-local reduction.
        local_sums = self._local_sums(chunks)

        # Phase 2: exchange partial sums of shared nodes with the owners.
        sends: dict[tuple[int, int], np.ndarray] = {}
        for r in range(world.size):
            slots = self.rank_shared_slots[r]
            if len(slots) == 0:
                continue
            with self._rank_span(r, "fleet.gs.pack", cat="gs"):
                gids = self.local_unique[r][slots]
                vals = local_sums[r][slots]
                by_owner: dict[int, list[tuple[int, float]]] = {}
                for g, v in zip(gids, vals):
                    o = self.shared_owner[int(g)]
                    by_owner.setdefault(o, []).append((int(g), float(v)))
                for o, pairs in by_owner.items():
                    arr = np.array(pairs, dtype=np.float64)
                    sends[(r, o)] = arr
        delivered = world.exchange(sends)

        # Owners reduce in rank order (deterministic), then send results back.
        totals: dict[int, float] = {}
        for (src, _dst), arr in sorted(delivered.items()):
            for g, v in arr:
                totals[int(g)] = totals.get(int(g), 0.0) + v

        replies: dict[tuple[int, int], np.ndarray] = {}
        for g in self.shared_ids:
            gi = int(g)
            o = self.shared_owner[gi]
            for h in self.shared_holders[gi]:
                key = (o, h)
                replies.setdefault(key, [])
                replies[key].append((gi, totals[gi]))
        replies = {k: np.array(v, dtype=np.float64) for k, v in replies.items()}
        delivered_back = world.exchange(replies)

        # Install the reduced shared values.
        out_chunks = []
        for r in range(world.size):
            with self._rank_span(r, "fleet.gs.unpack", cat="gs"):
                s = local_sums[r]
                slot_of = {int(g): i for i, g in enumerate(self.local_unique[r])}
                for (o, dst), arr in delivered_back.items():
                    if dst != r:
                        continue
                    for g, v in arr:
                        s[slot_of[int(g)]] = v
                out = s[self.local_ids[r]].reshape(chunks[r].shape)
            out_chunks.append(out)
        return out_chunks

    def _local_sums(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        out = []
        for r, chunk in enumerate(chunks):
            with self._rank_span(r, "fleet.gs.local", cat="gs"):
                out.append(
                    np.bincount(
                        self.local_ids[r], weights=chunk.reshape(-1),
                        minlength=len(self.local_unique[r]),
                    )
                )
        return out

    def _add_one_sided(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        """One-round PUT-style shared phase (symmetric all-to-all of holders)."""
        world = self.world
        local_sums = self._local_sums(chunks)

        # Every holder puts its partial for each shared id to every other
        # holder, in one round.
        sends: dict[tuple[int, int], list[tuple[int, float]]] = {}
        slot_of = [
            {int(g): i for i, g in enumerate(self.local_unique[r])}
            for r in range(world.size)
        ]
        for g in self.shared_ids:
            gi = int(g)
            holders = self.shared_holders[gi]
            for src in holders:
                val = float(local_sums[src][slot_of[src][gi]])
                for dst in holders:
                    if dst == src:
                        continue
                    sends.setdefault((src, dst), []).append((gi, val))
        delivered = world.exchange(
            {k: np.array(v, dtype=np.float64) for k, v in sends.items()}
        )

        # Local reduction in rank order for determinism: contributions are
        # sorted by source rank with the own value inserted at its rank
        # position, so every holder sums in the same order.
        per_dst_gid: dict[tuple[int, int], list[tuple[int, float]]] = {}
        for (src, dst), arr in delivered.items():
            for g, v in arr:
                per_dst_gid.setdefault((dst, int(g)), []).append((src, float(v)))

        out_chunks = []
        for r in range(world.size):
            s = local_sums[r].copy()
            for gi_slot, gi in ((slot_of[r][int(g)], int(g)) for g in self.shared_ids
                                if int(g) in slot_of[r]):
                contribs = per_dst_gid.get((r, gi), [])
                contribs.append((r, float(local_sums[r][gi_slot])))
                contribs.sort(key=lambda sv: sv[0])
                s[gi_slot] = sum(v for _, v in contribs)
            out_chunks.append(s[self.local_ids[r]].reshape(chunks[r].shape))
        return out_chunks

    def add_full(self, u: np.ndarray, algorithm: str = "two_phase") -> np.ndarray:
        """Convenience: full-field in, full-field out."""
        return self.gather_field(self.add(self.scatter_field(u), algorithm=algorithm))

    def dot(self, a_chunks: list[np.ndarray], b_chunks: list[np.ndarray]) -> float:
        """Unique-dof inner product: local weighted dots + one allreduce."""
        locals_ = []
        for r in range(self.world.size):
            mult = np.bincount(
                self.local_ids[r], minlength=len(self.local_unique[r])
            ).astype(np.float64)
            # Global multiplicity of shared nodes differs from the local
            # count; fetch it once (precomputed lazily).
            gmult = self._global_multiplicity()[self.local_unique[r]]
            w = (mult / mult) / gmult  # 1/global multiplicity per local slot
            wfield = w[self.local_ids[r]]
            locals_.append(
                float(np.sum(a_chunks[r].reshape(-1) * b_chunks[r].reshape(-1) * wfield))
            )
        return self.world.allreduce_scalar(locals_)

    def _global_multiplicity(self) -> np.ndarray:
        if not hasattr(self, "_gmult"):
            counts = np.zeros(self.n_global)
            for r in range(self.world.size):
                counts += np.bincount(
                    self.local_unique[r][self.local_ids[r]], minlength=self.n_global
                )
            self._gmult = counts
        return self._gmult
